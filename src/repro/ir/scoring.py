"""Relevance scoring: the paper's TF x IDF formulas and quantization.

Two formulas from the paper:

* Equation 1 (general, multi-keyword):

  ``Score(Q, F_d) = (1/|F_d|) * sum_{t in Q} (1 + ln f_{d,t}) * ln(1 + N/f_t)``

* Equation 2 (single keyword — the IDF factor is constant per query, so
  ranking needs only TF and file length):

  ``Score(t, F_d) = (1/|F_d|) * (1 + ln f_{d,t})``

The OPM encrypts *integer levels*, so scores are quantized to a domain
``{1, ..., M}`` (the paper encodes into ``M = 128`` levels).  The
quantizer uses a fixed owner-chosen scale so that adding documents
later never changes the level of an existing score — the property the
score-dynamics experiments rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex


def single_keyword_score(term_frequency: int, file_length: int) -> float:
    """Equation 2: ``(1/|F_d|) * (1 + ln f_{d,t})``."""
    if term_frequency < 1:
        raise ParameterError(
            f"term frequency must be >= 1, got {term_frequency}"
        )
    if file_length < 1:
        raise ParameterError(f"file length must be >= 1, got {file_length}")
    return (1.0 + math.log(term_frequency)) / file_length


def idf_factor(collection_size: int, document_frequency: int) -> float:
    """Equation 1's IDF term: ``ln(1 + N / f_t)``."""
    if collection_size < 1:
        raise ParameterError(
            f"collection size must be >= 1, got {collection_size}"
        )
    if not 1 <= document_frequency <= collection_size:
        raise ParameterError(
            f"document frequency must be in [1, N]; got {document_frequency} "
            f"of {collection_size}"
        )
    return math.log(1.0 + collection_size / document_frequency)


def query_score(
    term_frequencies: Mapping[str, int],
    document_frequencies: Mapping[str, int],
    file_length: int,
    collection_size: int,
) -> float:
    """Equation 1 for a multi-keyword query.

    Parameters
    ----------
    term_frequencies:
        ``f_{d,t}`` for each query term present in the file; terms
        absent from the file should be omitted (they contribute zero).
    document_frequencies:
        ``f_t`` for each query term (must cover every term in
        ``term_frequencies``).
    file_length:
        ``|F_d|``.
    collection_size:
        ``N``.
    """
    if file_length < 1:
        raise ParameterError(f"file length must be >= 1, got {file_length}")
    total = 0.0
    for term, tf in term_frequencies.items():
        if tf < 1:
            raise ParameterError(f"term frequency must be >= 1, got {tf}")
        if term not in document_frequencies:
            raise ParameterError(
                f"missing document frequency for query term {term!r}"
            )
        total += (1.0 + math.log(tf)) * idf_factor(
            collection_size, document_frequencies[term]
        )
    return total / file_length


def score_posting_list(index: InvertedIndex, term: str) -> dict[str, float]:
    """Equation-2 scores for every file in ``term``'s posting list."""
    return {
        posting.file_id: single_keyword_score(
            posting.term_frequency, index.file_length(posting.file_id)
        )
        for posting in index.posting_list(term)
    }


def posting_scores(index: InvertedIndex, postings: Iterable) -> list[float]:
    """Equation-2 scores for ``postings``, in input order.

    The shared first half of every build path's per-posting loop; the
    batch shape pairs with :meth:`~repro.crypto.opm.OneToManyOpm.map_scores`
    (score here, quantize, map the whole list at once).
    """
    return [
        single_keyword_score(
            posting.term_frequency, index.file_length(posting.file_id)
        )
        for posting in postings
    ]


def posting_levels(
    index: InvertedIndex,
    postings: Iterable,
    quantizer: "ScoreQuantizer",
) -> list[int]:
    """Quantized equation-2 levels for ``postings``, in input order."""
    return [
        quantizer.quantize(score)
        for score in posting_scores(index, postings)
    ]


@dataclass(frozen=True)
class ScoreQuantizer:
    """Maps real-valued scores onto the integer domain ``{1, ..., levels}``.

    Attributes
    ----------
    levels:
        ``M``, the number of quantization levels (paper: 128).
    scale:
        The score mapped to the top level.  The owner fixes it once
        (e.g. from the collection's observed maximum, with headroom)
        so later insertions do not shift existing levels.  Scores above
        ``scale`` clamp to ``levels``.
    """

    levels: int
    scale: float

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ParameterError(f"levels must be >= 1, got {self.levels}")
        if not self.scale > 0:
            raise ParameterError(f"scale must be positive, got {self.scale}")

    def quantize(self, score: float) -> int:
        """Return the level of ``score`` in ``{1, ..., levels}``."""
        if score < 0:
            raise ParameterError(f"score must be non-negative, got {score}")
        level = math.ceil(score / self.scale * self.levels)
        return max(1, min(self.levels, level))

    def dequantize(self, level: int) -> float:
        """Return the upper score edge represented by ``level``."""
        if not 1 <= level <= self.levels:
            raise ParameterError(
                f"level must be in [1, {self.levels}], got {level}"
            )
        return level * self.scale / self.levels

    @classmethod
    def fit(
        cls, scores: Iterable[float], levels: int = 128, headroom: float = 1.0
    ) -> "ScoreQuantizer":
        """Build a quantizer scaled to the observed score maximum.

        ``headroom > 1`` leaves slack above the maximum so future
        documents with slightly higher scores still quantize without
        clamping.
        """
        if headroom < 1.0:
            raise ParameterError(f"headroom must be >= 1, got {headroom}")
        maximum = max(scores, default=0.0)
        if maximum <= 0:
            raise ParameterError("cannot fit a quantizer to empty/zero scores")
        return cls(levels=levels, scale=maximum * headroom)
