"""Information-retrieval substrate: analysis, indexing, scoring, ranking.

Implements the plaintext IR machinery the paper builds on (Section II):
the inverted index of Fig. 2, the TF x IDF scoring of equations 1-2,
standard text analysis (case folding, Porter stemming, stop words), and
heap-based top-k retrieval.
"""

from repro.ir.analyzer import Analyzer
from repro.ir.inverted_index import InvertedIndex, Posting
from repro.ir.scoring import (
    ScoreQuantizer,
    idf_factor,
    query_score,
    score_posting_list,
    single_keyword_score,
)
from repro.ir.stats import (
    CollectionStats,
    DuplicateStats,
    collection_stats,
    duplicate_stats,
    keyword_duplicate_ratio,
    score_level_histogram,
)
from repro.ir.stemmer import PorterStemmer, stem
from repro.ir.stopwords import STOP_WORDS, is_stop_word, remove_stop_words
from repro.ir.scoring_variants import (
    SCORER_REGISTRY,
    bm25_tf_score,
    log_tf_score,
    raw_tf_score,
    relative_tf_score,
)
from repro.ir.tokenizer import fold_case, tokenize, tokenize_list
from repro.ir.topk import rank_all, top_k

__all__ = [
    "Analyzer",
    "CollectionStats",
    "DuplicateStats",
    "InvertedIndex",
    "PorterStemmer",
    "Posting",
    "SCORER_REGISTRY",
    "STOP_WORDS",
    "ScoreQuantizer",
    "bm25_tf_score",
    "collection_stats",
    "duplicate_stats",
    "fold_case",
    "idf_factor",
    "is_stop_word",
    "keyword_duplicate_ratio",
    "log_tf_score",
    "query_score",
    "rank_all",
    "raw_tf_score",
    "relative_tf_score",
    "remove_stop_words",
    "score_level_histogram",
    "score_posting_list",
    "single_keyword_score",
    "stem",
    "tokenize",
    "tokenize_list",
    "top_k",
]
