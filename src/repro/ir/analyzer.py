"""The text-analysis pipeline: case folding -> tokens -> stop filter -> stems.

This is the "keyword extraction and refinement" process the paper
delegates to standard IR practice (Section II, footnote 2).  The
pipeline is configurable so experiments can isolate the effect of each
stage, and deterministic so index builds are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.ir.stemmer import PorterStemmer
from repro.ir.stopwords import STOP_WORDS
from repro.ir.tokenizer import tokenize


@dataclass
class Analyzer:
    """Configurable analysis pipeline producing index terms.

    Attributes
    ----------
    use_stemming:
        Apply the Porter stemmer to each surviving token.
    use_stop_words:
        Drop tokens found in ``stop_words``.
    stop_words:
        The stop list (defaults to :data:`repro.ir.stopwords.STOP_WORDS`).
    drop_numeric:
        Forwarded to the tokenizer: skip all-digit tokens.
    min_token_length, max_token_length:
        Forwarded to the tokenizer.
    """

    use_stemming: bool = True
    use_stop_words: bool = True
    stop_words: frozenset[str] = STOP_WORDS
    drop_numeric: bool = True
    min_token_length: int = 2
    max_token_length: int = 40
    _stemmer: PorterStemmer = field(
        default_factory=PorterStemmer, repr=False, compare=False
    )

    def analyze(self, text: str) -> Iterator[str]:
        """Yield index terms of ``text`` in document order (with repeats).

        Repeats matter: term frequency ``f_{d,t}`` is computed from this
        stream, so each surviving occurrence is yielded.
        """
        for token in tokenize(
            text,
            drop_numeric=self.drop_numeric,
            min_length=self.min_token_length,
            max_length=self.max_token_length,
        ):
            if self.use_stop_words and token in self.stop_words:
                continue
            if self.use_stemming:
                token = self._stemmer.stem(token)
            yield token

    def analyze_list(self, text: str) -> list[str]:
        """Like :meth:`analyze` but materialized."""
        return list(self.analyze(text))

    def analyze_query(self, keyword: str) -> str:
        """Normalize a single query keyword the same way documents are.

        Raises :class:`ValueError` via the tokenizer contract if the
        keyword does not reduce to exactly one term; queries must match
        the index vocabulary transformation or they will never hit.
        """
        terms = self.analyze_list(keyword)
        if len(terms) != 1:
            raise ValueError(
                f"query keyword {keyword!r} did not normalize to exactly one "
                f"term (got {terms}); search one keyword at a time"
            )
        return terms[0]

    def vocabulary(self, texts: Iterable[str]) -> set[str]:
        """Return the set of distinct index terms across ``texts``."""
        vocab: set[str] = set()
        for text in texts:
            vocab.update(self.analyze(text))
        return vocab
