"""Alternative relevance-scoring formulas.

The paper picks equation 2 from "several hundred variations of the
TF x IDF weighting scheme", noting (citing Zobel & Moffat) that "no
single combination of them outperforms any of the others universally".
These variants make that remark testable: the scheme is agnostic to the
scoring formula (anything monotone quantizes and OPM-maps the same
way), and ``benchmarks/bench_scoring_variants.py`` measures how much
the *ranking* actually moves when the formula changes.

All functions score a single (term, document) pair, mirroring
:func:`repro.ir.scoring.single_keyword_score`'s signature style so they
can be swapped in experiments.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ParameterError

#: A single-keyword scorer: (term_frequency, file_length) -> score.
Scorer = Callable[[int, int], float]


def _validate(term_frequency: int, file_length: int) -> None:
    if term_frequency < 1:
        raise ParameterError(
            f"term frequency must be >= 1, got {term_frequency}"
        )
    if file_length < 1:
        raise ParameterError(f"file length must be >= 1, got {file_length}")


def raw_tf_score(term_frequency: int, file_length: int) -> float:
    """Unnormalized term frequency (the crudest member of the family)."""
    _validate(term_frequency, file_length)
    return float(term_frequency)


def log_tf_score(term_frequency: int, file_length: int) -> float:
    """``1 + ln(tf)`` without length normalization."""
    _validate(term_frequency, file_length)
    return 1.0 + math.log(term_frequency)


def relative_tf_score(term_frequency: int, file_length: int) -> float:
    """``tf / |F_d|`` — linear length normalization, no damping."""
    _validate(term_frequency, file_length)
    return term_frequency / file_length


def bm25_tf_score(
    term_frequency: int,
    file_length: int,
    average_file_length: float = 1.0,
    k1: float = 1.2,
    b: float = 0.75,
) -> float:
    """The BM25 term-frequency component (Robertson-Sparck Jones).

    ``tf * (k1 + 1) / (tf + k1 * (1 - b + b * |F_d| / avg))`` — the
    modern default in IR systems, with saturating TF and soft length
    normalization.
    """
    _validate(term_frequency, file_length)
    if not average_file_length > 0:
        raise ParameterError(
            f"average file length must be > 0, got {average_file_length}"
        )
    if k1 < 0 or not 0 <= b <= 1:
        raise ParameterError(f"invalid BM25 parameters k1={k1}, b={b}")
    normalizer = k1 * (1 - b + b * file_length / average_file_length)
    return term_frequency * (k1 + 1) / (term_frequency + normalizer)


#: Named scorer registry for experiments (the paper's eq. 2 included).
def paper_eq2_score(term_frequency: int, file_length: int) -> float:
    """The paper's equation 2 (re-exported for the registry)."""
    from repro.ir.scoring import single_keyword_score

    return single_keyword_score(term_frequency, file_length)


SCORER_REGISTRY: dict[str, Scorer] = {
    "paper-eq2": paper_eq2_score,
    "raw-tf": raw_tf_score,
    "log-tf": log_tf_score,
    "relative-tf": relative_tf_score,
}
