"""Tokenization and case folding.

The paper (Section II, footnote 2) delegates keyword extraction to
standard IR practice: case folding, stemming and stop-word removal.
This module supplies the first stage — splitting raw text into
lower-cased word tokens.

The tokenizer is intentionally simple and deterministic: maximal runs
of ASCII letters and digits form tokens; everything else separates
them.  Tokens that are pure digits can optionally be dropped (RFC texts
are full of section numbers and octet values that make poor keywords).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import ParameterError

_TOKEN_RE = re.compile(r"[a-z0-9]+")
_DIGITS_RE = re.compile(r"\d+$")


def fold_case(text: str) -> str:
    """Lower-case ``text`` (ASCII-oriented case folding)."""
    return text.lower()


def tokenize(
    text: str,
    drop_numeric: bool = True,
    min_length: int = 2,
    max_length: int = 40,
) -> Iterator[str]:
    """Yield lower-cased tokens from ``text`` in document order.

    Parameters
    ----------
    text:
        Raw document text.
    drop_numeric:
        Skip tokens that are entirely digits.
    min_length, max_length:
        Tokens outside ``[min_length, max_length]`` characters are
        skipped (single letters and absurdly long artifacts are noise).
    """
    if min_length < 1:
        raise ParameterError(f"min_length must be >= 1, got {min_length}")
    if max_length < min_length:
        raise ParameterError(
            f"max_length {max_length} must be >= min_length {min_length}"
        )
    for match in _TOKEN_RE.finditer(fold_case(text)):
        token = match.group()
        if not min_length <= len(token) <= max_length:
            continue
        if drop_numeric and _DIGITS_RE.fullmatch(token):
            continue
        yield token


def tokenize_list(text: str, **kwargs) -> list[str]:
    """Like :func:`tokenize` but materialized as a list."""
    return list(tokenize(text, **kwargs))
