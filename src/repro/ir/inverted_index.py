"""Plaintext inverted index (the paper's Fig. 2 structure).

Maps each keyword ``w_i`` to its posting list: the files containing it
together with per-file term frequencies, from which relevance scores
are computed.  This plaintext structure is what the data owner builds
locally before securing it (basic scheme, Fig. 3) or OPM-encrypting the
scores (efficient scheme); it also serves as the plaintext-search
baseline for correctness and efficiency comparisons.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import CorpusError, ParameterError


@dataclass(frozen=True)
class Posting:
    """One posting entry: a file containing the keyword.

    Attributes
    ----------
    file_id:
        The identifier ``id(F_j)`` uniquely locating the file.
    term_frequency:
        ``f_{d,t}`` — occurrences of the keyword in the file.
    """

    file_id: str
    term_frequency: int

    def __post_init__(self) -> None:
        if not self.file_id:
            raise ParameterError("posting file_id must be non-empty")
        if self.term_frequency < 1:
            raise ParameterError(
                f"term frequency must be >= 1, got {self.term_frequency}"
            )


class InvertedIndex:
    """In-memory inverted index with incremental document updates.

    Documents are added as ``(file_id, terms)`` where ``terms`` is the
    analyzer's output stream (with repeats).  The index maintains, per
    the paper's notation:

    * ``F(w_i)`` / ``N_i`` — the posting set of each keyword and its
      size (:meth:`posting_list`, :meth:`document_frequency`);
    * ``|F_d|`` — each file's length in indexed terms
      (:meth:`file_length`), the score normalization factor;
    * ``N`` — the collection size (:attr:`num_files`).

    Removal support (:meth:`remove_document`) exists to exercise the
    score-dynamics experiments.
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._file_lengths: dict[str, int] = {}

    # -- construction ---------------------------------------------------

    def add_document(self, file_id: str, terms: Iterable[str]) -> None:
        """Index a document given its analyzed term stream."""
        if not file_id:
            raise ParameterError("file_id must be non-empty")
        if file_id in self._file_lengths:
            raise CorpusError(f"document {file_id!r} is already indexed")
        counts = Counter(terms)
        total = sum(counts.values())
        if total == 0:
            raise CorpusError(
                f"document {file_id!r} produced no index terms; refusing to "
                "index an empty document (its |F_d| normalizer would be zero)"
            )
        self._file_lengths[file_id] = total
        for term, frequency in counts.items():
            self._postings.setdefault(term, {})[file_id] = frequency

    def remove_document(self, file_id: str) -> None:
        """Remove a document and all its postings."""
        if file_id not in self._file_lengths:
            raise CorpusError(f"document {file_id!r} is not indexed")
        del self._file_lengths[file_id]
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(file_id, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- queries ----------------------------------------------------------

    @property
    def num_files(self) -> int:
        """``N`` — number of indexed documents."""
        return len(self._file_lengths)

    @property
    def vocabulary(self) -> set[str]:
        """The distinct keyword set ``W`` (copy)."""
        return set(self._postings)

    @property
    def vocabulary_size(self) -> int:
        """``m = |W|``."""
        return len(self._postings)

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    def file_ids(self) -> Iterator[str]:
        """Iterate over indexed file identifiers."""
        return iter(self._file_lengths)

    def file_length(self, file_id: str) -> int:
        """``|F_d|`` — the document's length in indexed terms."""
        try:
            return self._file_lengths[file_id]
        except KeyError:
            raise CorpusError(f"document {file_id!r} is not indexed") from None

    def document_frequency(self, term: str) -> int:
        """``N_i = |F(w_i)|`` — number of files containing ``term``."""
        return len(self._postings.get(term, {}))

    def term_frequency(self, term: str, file_id: str) -> int:
        """``f_{d,t}``; zero when the file does not contain the term."""
        return self._postings.get(term, {}).get(file_id, 0)

    def posting_list(self, term: str) -> list[Posting]:
        """Return the posting list ``I(w)`` sorted by file id.

        An unknown term yields an empty list (searching a keyword
        absent from the collection is a legal query).
        """
        postings = self._postings.get(term, {})
        return [
            Posting(file_id=file_id, term_frequency=frequency)
            for file_id, frequency in sorted(postings.items())
        ]

    def max_posting_length(self) -> int:
        """``nu = max_i N_i`` — the padding bound of the basic scheme."""
        if not self._postings:
            return 0
        return max(len(postings) for postings in self._postings.values())

    def items(self) -> Iterator[tuple[str, list[Posting]]]:
        """Iterate ``(term, posting list)`` pairs in sorted term order."""
        for term in sorted(self._postings):
            yield term, self.posting_list(term)
