"""Porter stemming algorithm, implemented from scratch.

The classic five-step suffix-stripping algorithm (M.F. Porter, *An
algorithm for suffix stripping*, Program 14(3), 1980), which the paper
lists among the standard index-size-reduction techniques.  The
implementation follows the original paper's rule tables, including the
special cases (``bled``, ``sky``, measure conditions, the ``*o`` rule,
etc.), and is validated in the test suite against the published sample
vocabulary behaviour.

Only lower-case ASCII words are expected (the tokenizer guarantees
this); other input is returned unchanged when shorter than 3 letters,
per Porter's guidance that short words are rarely inflected forms.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    """Porter's consonant test: ``y`` is a consonant after a vowel."""
    letter = word[index]
    if letter in _VOWELS:
        return False
    if letter == "y":
        if index == 0:
            return True
        return not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's measure m: the number of VC sequences in the stem."""
    m = 0
    previous_was_vowel = False
    for i in range(len(stem)):
        consonant = _is_consonant(stem, i)
        if consonant and previous_was_vowel:
            m += 1
        previous_was_vowel = not consonant
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """``*o`` condition: stem ends consonant-vowel-consonant, last not w/x/y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return stem + "ee"
        return word
    flag = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word, flag = stem, True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word, flag = stem, True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP_2_RULES = (
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
)

_STEP_3_RULES = (
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
)

_STEP_4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _apply_rule_table(word: str, rules, min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > min_measure - 1:
                return stem + replacement
            return word
    return word


def _step_2(word: str) -> str:
    return _apply_rule_table(word, _STEP_2_RULES, min_measure=1)


def _step_3(word: str) -> str:
    return _apply_rule_table(word, _STEP_3_RULES, min_measure=1)


def _step_4(word: str) -> str:
    for suffix in _STEP_4_SUFFIXES:
        # "ement" and "ment" precede "ent" in the table, so the longest
        # applicable suffix always wins, as the algorithm requires.
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
    return word


def _step_5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            return stem
    return word


def _step_5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Return the Porter stem of a lower-case ``word``.

    Words of length <= 2 are returned unchanged, following the original
    algorithm's convention.
    """
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5a(word)
    word = _step_5b(word)
    return word


class PorterStemmer:
    """Object wrapper around :func:`stem` with a per-instance memo cache.

    Stemming is the hottest part of index construction on large
    corpora; the cache makes repeated words (the common case under
    Zipf's law) near-free.
    """

    def __init__(self) -> None:
        self._cache: dict[str, str] = {}

    def stem(self, word: str) -> str:
        """Return the (cached) Porter stem of ``word``."""
        cached = self._cache.get(word)
        if cached is None:
            cached = stem(word)
            self._cache[word] = cached
        return cached

    def __call__(self, word: str) -> str:
        return self.stem(word)
