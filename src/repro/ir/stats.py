"""Collection statistics driving the paper's parameter choices.

Section IV-C sizes the OPM range from two collection statistics:

* ``max`` — the maximum number of duplicate quantized scores within the
  index (how peaky the worst posting list is);
* ``lambda`` — the average number of scores per posting list.

Their ratio ``max/lambda`` (0.06 in the paper's "network" example)
feeds equation 3.  This module computes those statistics, plus general
descriptive numbers (posting-list length distribution, vocabulary size,
score duplicate profiles) used across the benches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import ScoreQuantizer, score_posting_list


@dataclass(frozen=True)
class DuplicateStats:
    """Duplicate profile of quantized scores across the index.

    Attributes
    ----------
    max_duplicates:
        The paper's ``max``: the largest multiplicity of any single
        (posting list, score level) pair.
    average_list_length:
        The paper's ``lambda``: mean posting-list length.
    ratio:
        ``max / lambda`` — the left-hand numerator driver of eq. 3.
    """

    max_duplicates: int
    average_list_length: float
    ratio: float


@dataclass(frozen=True)
class CollectionStats:
    """Descriptive statistics of an indexed collection."""

    num_files: int
    vocabulary_size: int
    total_postings: int
    max_posting_length: int
    average_posting_length: float
    average_file_length: float


def collection_stats(index: InvertedIndex) -> CollectionStats:
    """Compute descriptive statistics for ``index``."""
    if index.num_files == 0:
        raise ParameterError("cannot compute statistics of an empty index")
    lengths = [index.document_frequency(term) for term in index.vocabulary]
    total_postings = sum(lengths)
    file_lengths = [index.file_length(f) for f in index.file_ids()]
    return CollectionStats(
        num_files=index.num_files,
        vocabulary_size=index.vocabulary_size,
        total_postings=total_postings,
        max_posting_length=max(lengths),
        average_posting_length=total_postings / len(lengths),
        average_file_length=sum(file_lengths) / len(file_lengths),
    )


def score_level_histogram(
    index: InvertedIndex, term: str, quantizer: ScoreQuantizer
) -> Counter:
    """Histogram of quantized score levels for one posting list.

    This is exactly the data behind the paper's Fig. 4 ("distribution
    of relevance score for keyword 'network'").
    """
    scores = score_posting_list(index, term)
    return Counter(quantizer.quantize(score) for score in scores.values())


def duplicate_stats(
    index: InvertedIndex, quantizer: ScoreQuantizer
) -> DuplicateStats:
    """Compute the paper's ``max`` and ``lambda`` over the whole index."""
    if index.vocabulary_size == 0:
        raise ParameterError("cannot compute duplicate stats of an empty index")
    max_duplicates = 0
    total_length = 0
    for term, postings in index.items():
        histogram = score_level_histogram(index, term, quantizer)
        if histogram:
            max_duplicates = max(max_duplicates, max(histogram.values()))
        total_length += len(postings)
    average = total_length / index.vocabulary_size
    return DuplicateStats(
        max_duplicates=max_duplicates,
        average_list_length=average,
        ratio=max_duplicates / average,
    )


def keyword_duplicate_ratio(
    index: InvertedIndex, term: str, quantizer: ScoreQuantizer
) -> float:
    """``max/lambda`` computed for a single keyword's posting list.

    The paper's worked example uses one keyword ("network", ratio
    0.06 with a 1000-entry list); this helper reproduces that view.
    """
    histogram = score_level_histogram(index, term, quantizer)
    if not histogram:
        raise ParameterError(f"term {term!r} has no postings")
    length = sum(histogram.values())
    return max(histogram.values()) / length
