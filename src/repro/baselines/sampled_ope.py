"""Sampling-trained order-preserving transform (Zerber+r [16] style).

The EDBT'09 approach the paper compares against: before outsourcing,
the owner *samples* the relevance scores and trains a monotone
transform — the empirical CDF scaled to the ciphertext range — so that
transformed scores are approximately uniform.  Mapping a score means
looking up its CDF interval and drawing a pseudo-random point inside.

Two weaknesses relative to the paper's OPM, both modelled here:

* training requires a representative **pre-sample** of the scores to be
  outsourced (the OPM only needs keys);
* when scores following a *different distribution* are inserted, the
  trained transform no longer uniformizes and must be rebuilt
  (:meth:`SampledOpeMapper.distribution_drift` /
  :meth:`~SampledOpeMapper.needs_rebuild`), remapping everything.

Unlike :mod:`repro.baselines.bucket_ope`, the trained transform is
defined on *all* levels of the domain (by CDF interpolation), so
inserting an unseen level is representable — just increasingly
non-uniform, which is the failure mode [16] documents.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.crypto.tape import KeyedTape, encode_context
from repro.errors import ParameterError


class SampledOpeMapper:
    """Empirical-CDF order-preserving transform trained on a sample."""

    def __init__(
        self,
        key: bytes,
        domain_size: int,
        range_size: int,
        cdf_edges: list[int],
        sample_distribution: Counter,
    ):
        if not key:
            raise ParameterError("mapper key must be non-empty")
        self._key = bytes(key)
        self._domain_size = domain_size
        self._range_size = range_size
        # cdf_edges[i] = exclusive upper range point for level i+1.
        self._edges = cdf_edges
        self._sample_distribution = sample_distribution
        # Pre-keyed tape + per-level context prefixes: same fast-path
        # treatment as the OPM, byte-identical to fresh CoinStreams.
        self._tape = KeyedTape(self._key)
        self._prefix_cache: dict[int, bytes] = {}

    @classmethod
    def fit(
        cls,
        key: bytes,
        sample_levels: Iterable[int],
        domain_size: int,
        range_size: int,
        smoothing: float = 1.0,
    ) -> "SampledOpeMapper":
        """Train the transform from pre-sampled score levels.

        Laplace smoothing guarantees every level of the domain gets a
        non-empty interval even if absent from the sample (those
        intervals are small, reflecting the sample's belief that the
        level is rare).
        """
        if domain_size < 1:
            raise ParameterError(f"domain_size must be >= 1, got {domain_size}")
        if range_size < domain_size:
            raise ParameterError(
                f"range size {range_size} below domain size {domain_size}"
            )
        counts = Counter(sample_levels)
        if not counts:
            raise ParameterError("cannot train on an empty sample")
        if any(not 1 <= level <= domain_size for level in counts):
            raise ParameterError("sample contains levels outside the domain")
        if smoothing <= 0:
            raise ParameterError(f"smoothing must be > 0, got {smoothing}")
        total = sum(counts.values()) + smoothing * domain_size
        edges = []
        cumulative = 0.0
        for level in range(1, domain_size + 1):
            cumulative += (counts.get(level, 0) + smoothing) / total
            edge = min(range_size, max(level, round(cumulative * range_size)))
            if edges and edge <= edges[-1]:
                edge = edges[-1] + 1
            edges.append(edge)
        if edges[-1] > range_size:
            raise ParameterError(
                "range too small for the smoothed CDF; enlarge range_size"
            )
        edges[-1] = range_size
        return cls(key, domain_size, range_size, edges, counts)

    def interval(self, level: int) -> tuple[int, int]:
        """The trained range interval ``[low, high]`` of ``level``."""
        if not 1 <= level <= self._domain_size:
            raise ParameterError(
                f"level must be in [1, {self._domain_size}], got {level}"
            )
        low = 1 if level == 1 else self._edges[level - 2] + 1
        high = self._edges[level - 1]
        return low, high

    def _choice_seed(self, level: int, low: int, high: int, file_id: bytes) -> bytes:
        prefix = self._prefix_cache.get(level)
        if prefix is None:
            prefix = encode_context((low, high, level))
            self._prefix_cache[level] = prefix
        return prefix + encode_context((file_id,))

    def map_score(self, level: int, file_id: bytes | str) -> int:
        """Map a level through the trained transform."""
        if isinstance(file_id, str):
            file_id = file_id.encode("utf-8")
        low, high = self.interval(level)
        seed = self._choice_seed(level, low, high, bytes(file_id))
        return self._tape.choice(seed, low, high)

    def map_scores(
        self, items: Iterable[tuple[int, bytes | str]]
    ) -> list[int]:
        """Batch :meth:`map_score`; same values in input order."""
        return [self.map_score(level, file_id) for level, file_id in items]

    def distribution_drift(self, updated_levels: Iterable[int]) -> float:
        """Total-variation distance between trained and current shares."""
        counts = Counter(updated_levels)
        if not counts:
            raise ParameterError("updated level set must be non-empty")
        total = sum(counts.values())
        trained_total = sum(self._sample_distribution.values())
        drift = 0.0
        for level in range(1, self._domain_size + 1):
            observed = counts.get(level, 0) / total
            trained = self._sample_distribution.get(level, 0) / trained_total
            drift += abs(observed - trained)
        return drift / 2.0

    def needs_rebuild(
        self, updated_levels: Iterable[int], tolerance: float = 0.10
    ) -> bool:
        """True once the score distribution drifts past ``tolerance``.

        [16]'s transform only uniformizes scores drawn from (close to)
        the training distribution; past the tolerance the owner must
        retrain and remap the full index.
        """
        return self.distribution_drift(updated_levels) > tolerance
