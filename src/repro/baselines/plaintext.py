"""Plaintext ranked search — the efficiency upper bound.

No encryption anywhere: scores are computed from the plaintext inverted
index and ranked directly.  Every efficiency figure of the encrypted
schemes is reported relative to this baseline (the paper's claim is
that RSSE top-k is "almost as fast as in the plaintext domain").
"""

from __future__ import annotations

from repro.core.results import RankedFile, as_ranking
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import single_keyword_score
from repro.ir.topk import rank_all, top_k


class PlaintextRankedSearch:
    """Unprotected single-keyword ranked retrieval."""

    def __init__(self, index: InvertedIndex):
        self._index = index

    def _scored(self, term: str) -> list[tuple[str, float]]:
        return [
            (
                posting.file_id,
                single_keyword_score(
                    posting.term_frequency,
                    self._index.file_length(posting.file_id),
                ),
            )
            for posting in self._index.posting_list(term)
        ]

    def search_ranked(self, term: str) -> list[RankedFile]:
        """Full ranking by true equation-2 scores."""
        ordered = rank_all(self._scored(term), key=lambda pair: pair[1])
        return as_ranking(ordered)

    def search_top_k(self, term: str, k: int) -> list[RankedFile]:
        """Top-k by true equation-2 scores."""
        best = top_k(self._scored(term), k, key=lambda pair: pair[1])
        return as_ranking(best)
