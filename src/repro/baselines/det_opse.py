"""Deterministic-OPSE scoring — the strawman of Section IV-A.

Encrypt each quantized score with plain (one-to-one) OPSE under a
per-keyword key.  Ranking works exactly as in the efficient scheme, but
every duplicate score maps to the *same* ciphertext, so the encrypted
value distribution inherits the plaintext distribution's multiplicity
structure — the property the Fig. 4 reverse-engineering attack
exploits, and the reason the paper replaces this design with the
one-to-many mapping.

This baseline exists to make the attack comparison concrete:
``benchmarks/bench_attack_resistance.py`` re-identifies keywords with
high accuracy here and at chance level against the OPM.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.opse import OrderPreservingEncryption
from repro.crypto.prf import Prf
from repro.errors import ParameterError


class DeterministicOpseScoring:
    """Per-keyword deterministic OPSE over quantized score levels.

    Mirrors :meth:`repro.core.rsse.EfficientRSSE.opm_for_term` with the
    one-to-many randomization removed.  Because the mapping is
    deterministic, ciphertexts are memoized per ``(term, level)`` — a
    repeated level is a dict hit, not a descent.
    """

    def __init__(self, master_key: bytes, domain_size: int, range_size: int):
        if not master_key:
            raise ParameterError("master key must be non-empty")
        self._prf = Prf(master_key)
        self._domain_size = domain_size
        self._range_size = range_size
        self._per_term: dict[str, OrderPreservingEncryption] = {}
        self._ct_cache: dict[tuple[str, int], int] = {}

    def _opse_for(self, term: str) -> OrderPreservingEncryption:
        opse = self._per_term.get(term)
        if opse is None:
            key = self._prf.derive_key(b"det-opse|" + term.encode("utf-8"))
            opse = OrderPreservingEncryption(
                key, self._domain_size, self._range_size
            )
            self._per_term[term] = opse
        return opse

    def map_score(self, term: str, level: int, file_id: bytes | str) -> int:
        """Encrypt a level; the file id is ignored (deterministic)."""
        del file_id  # the strawman's defining weakness
        cached = self._ct_cache.get((term, level))
        if cached is None:
            cached = self._opse_for(term).encrypt(level)
            self._ct_cache[(term, level)] = cached
        return cached

    def map_scores(
        self, term: str, items: Iterable[tuple[int, bytes | str]]
    ) -> list[int]:
        """Batch :meth:`map_score` (same signature shape as the OPM's)."""
        return [
            self.map_score(term, level, file_id) for level, file_id in items
        ]

    def invert(self, term: str, ciphertext: int) -> int:
        """Decrypt a ciphertext back to its level."""
        return self._opse_for(term).decrypt(ciphertext)
