"""Baselines the paper compares against (Sections IV-A, VI-B, VII).

* :mod:`repro.baselines.plaintext` — unencrypted ranked search
  (efficiency upper bound);
* :mod:`repro.baselines.det_opse` — deterministic OPSE scoring (the
  Section IV-A strawman the frequency attack defeats);
* :mod:`repro.baselines.bucket_ope` — Swaminathan et al. [18]-style
  pre-built buckets (no score dynamics);
* :mod:`repro.baselines.sampled_ope` — Zerr et al. [16]-style
  sampling-trained transform (rebuilds on distribution drift).
"""

from repro.baselines.bucket_ope import BucketOpeMapper, LevelBucket
from repro.baselines.det_opse import DeterministicOpseScoring
from repro.baselines.plaintext import PlaintextRankedSearch
from repro.baselines.sampled_ope import SampledOpeMapper

__all__ = [
    "BucketOpeMapper",
    "DeterministicOpseScoring",
    "LevelBucket",
    "PlaintextRankedSearch",
    "SampledOpeMapper",
]
