"""Bucket-based order-preserving mapping (Swaminathan et al. [18] style).

The storage-security workshop scheme the paper compares against: the
data owner studies the score distribution up front and partitions the
ciphertext range into per-level buckets whose widths are proportional
to each level's observed frequency.  Mapping a score then means drawing
a pseudo-random point in its level's interval — the mapped values come
out near-uniform over the range ("uniformly distributing posting
elements"), which is the scheme's security goal.

The decisive weakness the paper highlights (Section VII): the bucket
geometry is *fitted to the score distribution*.  Inserting or updating
scores shifts the distribution; once it drifts, uniformity is lost and
the owner must recompute the buckets and **remap every posting element**
(the index is "completely rebuilt").  :meth:`BucketOpeMapper.needs_rebuild`
implements the drift test and ``benchmarks/bench_score_dynamics.py``
counts the remapping cost against the OPM's zero.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto.tape import KeyedTape, encode_context
from repro.errors import DomainError, ParameterError


@dataclass(frozen=True)
class LevelBucket:
    """The ciphertext interval assigned to one score level."""

    level: int
    low: int
    high: int

    @property
    def width(self) -> int:
        """Number of ciphertext points in the bucket."""
        return self.high - self.low + 1


class BucketOpeMapper:
    """Distribution-fitted bucket order-preserving mapping.

    Build with :meth:`fit`; the mapper is immutable afterwards — by
    design, because that is the baseline's limitation under study.
    """

    def __init__(self, key: bytes, buckets: Sequence[LevelBucket], range_size: int):
        if not key:
            raise ParameterError("mapper key must be non-empty")
        if not buckets:
            raise ParameterError("bucket list must be non-empty")
        self._key = bytes(key)
        self._buckets = {bucket.level: bucket for bucket in buckets}
        self._range_size = range_size
        self._trained_distribution = Counter(
            {bucket.level: bucket.width for bucket in buckets}
        )
        # Pre-keyed tape + per-level context prefixes: same fast-path
        # treatment as the OPM, byte-identical to fresh CoinStreams.
        self._tape = KeyedTape(self._key)
        self._prefix_cache: dict[int, bytes] = {}

    @classmethod
    def fit(
        cls,
        key: bytes,
        levels: Iterable[int],
        range_size: int,
    ) -> "BucketOpeMapper":
        """Fit buckets to the observed level distribution.

        Each observed level receives a contiguous interval whose width
        is proportional to its frequency (plus one point of floor so
        every observed level is mappable); intervals are laid out in
        level order, so the mapping is order-preserving across levels.
        """
        counts = Counter(levels)
        if not counts:
            raise ParameterError("cannot fit to an empty score set")
        total = sum(counts.values())
        if range_size < len(counts):
            raise ParameterError(
                f"range size {range_size} below distinct level count "
                f"{len(counts)}"
            )
        buckets = []
        cursor = 1
        remaining = range_size
        ordered_levels = sorted(counts)
        for position, level in enumerate(ordered_levels):
            if position == len(ordered_levels) - 1:
                width = remaining
            else:
                width = max(1, round(counts[level] / total * range_size))
                levels_after = len(ordered_levels) - position - 1
                width = min(width, remaining - levels_after)
            buckets.append(
                LevelBucket(level=level, low=cursor, high=cursor + width - 1)
            )
            cursor += width
            remaining -= width
        return cls(key, buckets, range_size)

    @property
    def trained_levels(self) -> set[int]:
        """Levels the mapper was fitted on (the only mappable ones)."""
        return set(self._buckets)

    def bucket(self, level: int) -> LevelBucket:
        """The interval fitted for ``level``; unseen levels are errors."""
        try:
            return self._buckets[level]
        except KeyError:
            raise DomainError(
                f"level {level} was not in the training distribution; the "
                "bucket mapping must be rebuilt"
            ) from None

    def map_score(self, level: int, file_id: bytes | str) -> int:
        """Map a level to a pseudo-random point of its fitted interval."""
        if isinstance(file_id, str):
            file_id = file_id.encode("utf-8")
        bucket = self.bucket(level)
        prefix = self._prefix_cache.get(level)
        if prefix is None:
            prefix = encode_context((bucket.low, bucket.high, level))
            self._prefix_cache[level] = prefix
        seed = prefix + encode_context((bytes(file_id),))
        return self._tape.choice(seed, bucket.low, bucket.high)

    def map_scores(
        self, items: Iterable[tuple[int, bytes | str]]
    ) -> list[int]:
        """Batch :meth:`map_score`; same values in input order."""
        return [self.map_score(level, file_id) for level, file_id in items]

    def needs_rebuild(
        self, updated_levels: Iterable[int], tolerance: float = 0.10
    ) -> bool:
        """Has the level distribution drifted beyond the fitted geometry?

        True when any level is new (it has no bucket at all), or when
        the total-variation distance between the observed level shares
        and the fitted bucket shares exceeds ``tolerance`` — at which
        point the mapped values are no longer near-uniform and [18]
        must rebuild (remap every posting element).
        """
        counts = Counter(updated_levels)
        if not counts:
            raise ParameterError("updated level set must be non-empty")
        if any(level not in self._buckets for level in counts):
            return True
        total = sum(counts.values())
        trained_total = sum(self._trained_distribution.values())
        drift = 0.0
        for level in self._buckets:
            observed_share = counts.get(level, 0) / total
            fitted_share = self._trained_distribution[level] / trained_total
            drift += abs(observed_share - fitted_share)
        return drift / 2.0 > tolerance
