"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Subclasses are
grouped by subsystem: cryptographic failures, parameter validation
failures, index/protocol failures, and corpus failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParameterError(ReproError, ValueError):
    """A security or scheme parameter is invalid or inconsistent.

    Raised, for example, when an OPSE domain is larger than its range,
    when a key has the wrong length, or when a top-k request asks for a
    non-positive ``k``.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed.

    This covers authentication failures on decryption, malformed
    ciphertexts, and values outside an encryption scheme's domain or
    range.
    """


class IntegrityError(CryptoError):
    """Ciphertext authentication failed (tampering or wrong key)."""


class DomainError(CryptoError, ValueError):
    """A plaintext lies outside the encryption scheme's domain."""


class RangeError(CryptoError, ValueError):
    """A ciphertext lies outside the encryption scheme's range."""


class IndexError_(ReproError):
    """A secure-index operation failed (missing list, malformed entry).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``SecureIndexError`` from the
    package root.
    """


SecureIndexError = IndexError_


class ProtocolError(ReproError):
    """A retrieval-protocol message was malformed or out of order."""


class CorpusError(ReproError):
    """A document collection could not be generated or loaded."""
