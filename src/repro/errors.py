"""Exception hierarchy for the ``repro`` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Subclasses are
grouped by subsystem: cryptographic failures, parameter validation
failures, index/protocol failures, and corpus failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParameterError(ReproError, ValueError):
    """A security or scheme parameter is invalid or inconsistent.

    Raised, for example, when an OPSE domain is larger than its range,
    when a key has the wrong length, or when a top-k request asks for a
    non-positive ``k``.
    """


class CryptoError(ReproError):
    """A cryptographic operation failed.

    This covers authentication failures on decryption, malformed
    ciphertexts, and values outside an encryption scheme's domain or
    range.
    """


class IntegrityError(CryptoError):
    """Ciphertext authentication failed (tampering or wrong key)."""


class DomainError(CryptoError, ValueError):
    """A plaintext lies outside the encryption scheme's domain."""


class RangeError(CryptoError, ValueError):
    """A ciphertext lies outside the encryption scheme's range."""


class IndexError_(ReproError):
    """A secure-index operation failed (missing list, malformed entry).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``SecureIndexError`` from the
    package root.
    """


SecureIndexError = IndexError_


class ProtocolError(ReproError):
    """A retrieval-protocol message was malformed or out of order."""


class TransportError(ReproError):
    """A network-layer failure on an otherwise well-formed exchange.

    The retryable class: a request that failed with a
    :class:`TransportError` (or any subclass) may be re-sent without
    violating protocol semantics, and
    :class:`repro.cloud.retry.RetryingChannel` does exactly that.
    Contrast :class:`ProtocolError`, which signals a malformed or
    unauthorized message that no amount of retrying will fix.
    """


class CallDroppedError(TransportError):
    """The request was lost in flight and never reached the server."""


class CallTimeoutError(TransportError):
    """The response arrived after the caller's per-call deadline."""


class CorruptedResponseError(TransportError):
    """The response bytes failed the wire-framing integrity check."""


class ShardDownError(TransportError):
    """The target shard is crashed or its circuit breaker is open."""


class ServerOverloadedError(TransportError):
    """The server shed this request at its admission-control limit.

    Returned explicitly (never by stalling) when a network server's
    in-flight queue is at its high-water mark.  Retryable: backing off
    and re-sending is exactly the intended client response.
    """


class RetryExhaustedError(TransportError):
    """Every attempt a :class:`~repro.cloud.retry.RetryPolicy` allows
    failed; the last underlying failure is chained as ``__cause__``."""


class CorpusError(ReproError):
    """A document collection could not be generated or loaded."""
