"""Integration: multi-user authorization, revocation, and re-keying."""

import pytest

from repro.cloud import (
    AuthorizationManager,
    Channel,
    CloudServer,
    DataOwner,
    DataUser,
)
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus
from repro.crypto import generate_key
from repro.errors import CryptoError


def fresh_deployment(documents):
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    server = CloudServer(
        outsourcing.secure_index, outsourcing.blob_store, can_rank=True
    )
    return scheme, owner, server


@pytest.fixture(scope="module")
def shared_world():
    documents = generate_corpus(25, seed=71, vocabulary_size=200)
    manager = AuthorizationManager(generate_key(), capacity=8)
    scheme, owner, server = fresh_deployment(documents)
    tickets = [manager.authorize_user() for _ in range(3)]
    broadcast = manager.publish_credentials(owner.authorize_user())
    return documents, manager, scheme, owner, server, tickets, broadcast


class TestEpochZero:
    def test_every_authorized_user_searches(self, shared_world):
        _, _, scheme, owner, server, tickets, broadcast = shared_world
        for ticket in tickets:
            credentials, _ = AuthorizationManager.redeem(ticket, broadcast)
            user = DataUser(
                scheme, credentials, Channel(server.handle), owner.analyzer
            )
            assert user.search_ranked_topk("network", 2)

    def test_identical_results_across_users(self, shared_world):
        _, _, scheme, owner, server, tickets, broadcast = shared_world
        results = []
        for ticket in tickets:
            credentials, _ = AuthorizationManager.redeem(ticket, broadcast)
            user = DataUser(
                scheme, credentials, Channel(server.handle), owner.analyzer
            )
            results.append(
                [hit.file_id for hit in user.search_ranked_topk("network", 5)]
            )
        assert results[0] == results[1] == results[2]


class TestRevocationLifecycle:
    def test_full_rekeying_locks_out_revoked_user(self, shared_world):
        documents, manager, _, _, _, tickets, old_broadcast = shared_world
        revoked_slot = tickets[1].key_set.user_index
        manager.revoke_user(revoked_slot)

        scheme2, owner2, server2 = fresh_deployment(documents)
        rotated = manager.rotate_credentials(owner2.authorize_user())

        # Non-revoked users migrate to the new epoch.
        for position, ticket in enumerate(tickets):
            if position == 1:
                with pytest.raises(CryptoError):
                    AuthorizationManager.redeem(ticket, rotated)
                continue
            credentials, epoch = AuthorizationManager.redeem(ticket, rotated)
            assert epoch == manager.epoch
            user = DataUser(
                scheme2, credentials, Channel(server2.handle),
                owner2.analyzer,
            )
            assert user.search_ranked_topk("network", 1)

        # The revoked user's stale credentials are useless against the
        # re-keyed index: trapdoor addresses no longer resolve.
        stale, _ = AuthorizationManager.redeem(tickets[1], old_broadcast)
        ghost = DataUser(
            scheme2, stale, Channel(server2.handle), owner2.analyzer
        )
        assert ghost.search_ranked_topk("network", 5) == []
