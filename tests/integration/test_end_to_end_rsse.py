"""End-to-end integration: efficient RSSE over the simulated cloud.

Owner -> server -> user, full protocol, checked against the plaintext
reference search at every step.
"""

import pytest

from repro.baselines.plaintext import PlaintextRankedSearch
from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus
from repro.ir import InvertedIndex, stem


@pytest.fixture(scope="module")
def deployment():
    documents = generate_corpus(40, seed=21, vocabulary_size=300)
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    server = CloudServer(
        outsourcing.secure_index, outsourcing.blob_store, can_rank=True
    )
    channel = Channel(server.handle)
    user = DataUser(scheme, owner.authorize_user(), channel, owner.analyzer)
    return documents, owner, server, channel, user


class TestRetrievalCorrectness:
    def test_topk_files_decrypt_to_original_documents(self, deployment):
        documents, _, _, _, user = deployment
        by_id = {document.doc_id: document.text for document in documents}
        hits = user.search_ranked_topk("network", 5)
        assert len(hits) == 5
        for hit in hits:
            assert hit.text == by_id[hit.file_id]

    def test_ranks_sequential(self, deployment):
        _, _, _, _, user = deployment
        hits = user.search_ranked_topk("network", 7)
        assert [hit.rank for hit in hits] == list(range(1, 8))

    def test_match_set_equals_plaintext_search(self, deployment):
        documents, owner, _, _, user = deployment
        term = stem("network")
        reference = PlaintextRankedSearch(owner.plain_index)
        expected = {r.file_id for r in reference.search_ranked(term)}
        hits = user.search_ranked_topk("network", len(documents))
        assert {hit.file_id for hit in hits} == expected

    def test_order_agrees_with_plaintext_up_to_quantization(self, deployment):
        _, owner, _, _, user = deployment
        term = stem("network")
        reference = PlaintextRankedSearch(owner.plain_index)
        truth = reference.search_ranked(term)
        true_scores = {r.file_id: r.score for r in truth}
        hits = user.search_ranked_topk("network", len(truth))
        # Walking down the encrypted ranking, true scores may only
        # decrease beyond one quantization step — computed from the
        # owner's actual (collection-wide, headroomed) quantizer, since
        # two files sharing a level may be that far apart.
        quantizer = owner.quantizer
        quantizer_step = quantizer.scale / quantizer.levels
        previous = None
        for hit in hits:
            score = true_scores[hit.file_id]
            if previous is not None:
                assert score <= previous + quantizer_step + 1e-12
            previous = score

    def test_single_round_trip(self, deployment):
        _, _, _, channel, user = deployment
        channel.stats.reset()
        user.search_ranked_topk("network", 3)
        assert channel.stats.round_trips == 1

    def test_multiple_keywords_multiple_users(self, deployment):
        documents, owner, server, _, _ = deployment
        scheme = EfficientRSSE(TEST_PARAMETERS)
        second_user = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(server.handle),
            owner.analyzer,
        )
        for keyword in ["network", "protocol", "routing"]:
            hits = second_user.search_ranked_topk(keyword, 3)
            assert len(hits) <= 3

    def test_unknown_keyword_returns_empty(self, deployment):
        _, _, _, _, user = deployment
        assert user.search_ranked_topk("zebrasaurus", 5) == []


class TestServerView:
    def test_search_pattern_visible_to_server(self, deployment):
        _, _, server, _, user = deployment
        before = len(server.log.observations)
        user.search_ranked_topk("network", 2)
        user.search_ranked_topk("network", 4)
        observations = server.log.observations[before:]
        assert observations[0].address == observations[1].address

    def test_distinct_keywords_distinct_addresses(self, deployment):
        _, _, server, _, user = deployment
        before = len(server.log.observations)
        user.search_ranked_topk("network", 2)
        user.search_ranked_topk("protocol", 2)
        observations = server.log.observations[before:]
        assert observations[0].address != observations[1].address

    def test_server_sees_only_opm_values_not_scores(self, deployment):
        _, _, server, _, user = deployment
        user.search_ranked_topk("network", 2)
        observation = server.log.observations[-1]
        for field in observation.score_fields:
            value = int.from_bytes(field, "big")
            assert 1 <= value <= TEST_PARAMETERS.range_size

    def test_topk_returns_only_k_files(self, deployment):
        _, _, server, _, user = deployment
        user.search_ranked_topk("network", 3)
        observation = server.log.observations[-1]
        assert len(observation.returned_file_ids) == 3
        assert len(observation.matched_file_ids) > 3
