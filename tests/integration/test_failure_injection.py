"""Failure injection: tampering, wrong keys, malformed traffic.

The honest-but-curious model says the server *follows the protocol* —
but a robust library must still fail safely when data or messages are
corrupted (disk rot, transport bugs, or a server that is not so honest
after all).  These tests inject each failure and pin the behaviour.
"""

import pytest

from repro.cloud import (
    BlobStore,
    Channel,
    CloudServer,
    DataOwner,
    DataUser,
    SearchRequest,
)
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.core.secure_index import try_decrypt_entry
from repro.corpus import generate_corpus
from repro.errors import IntegrityError, ProtocolError, ReproError


@pytest.fixture()
def deployment():
    documents = generate_corpus(15, seed=41, vocabulary_size=200)
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    server = CloudServer(
        outsourcing.secure_index, outsourcing.blob_store, can_rank=True
    )
    user = DataUser(
        scheme, owner.authorize_user(), Channel(server.handle),
        owner.analyzer,
    )
    return scheme, owner, outsourcing, server, user


class TestTamperedBlobs:
    def test_flipped_blob_bit_detected_at_decryption(self, deployment):
        scheme, owner, outsourcing, _, _ = deployment
        victim = next(outsourcing.blob_store.ids())
        blob = bytearray(outsourcing.blob_store.get(victim))
        blob[len(blob) // 2] ^= 0x01
        tampered_store = BlobStore()
        for doc_id in outsourcing.blob_store.ids():
            tampered_store.put(
                doc_id,
                bytes(blob)
                if doc_id == victim
                else outsourcing.blob_store.get(doc_id),
            )
        server = CloudServer(
            outsourcing.secure_index, tampered_store, can_rank=True
        )
        user = DataUser(
            scheme, owner.authorize_user(), Channel(server.handle),
            owner.analyzer,
        )
        with pytest.raises(IntegrityError):
            # Retrieve everything; the tampered file must trip the MAC.
            user.search_ranked_topk("network", 100)

    def test_untampered_files_still_fine(self, deployment):
        _, _, _, _, user = deployment
        assert user.search_ranked_topk("network", 3)


class TestTamperedIndexEntries:
    def test_corrupted_entry_treated_as_dummy(self, deployment):
        """A flipped entry fails authentication and silently drops.

        This is the designed failure mode (dummies are
        indistinguishable from corrupt entries); the search result
        shrinks by exactly the corrupted entry.
        """
        scheme, owner, outsourcing, _, _ = deployment
        trapdoor = scheme.trapdoor(owner.key, "network")
        entries = outsourcing.secure_index.lookup(trapdoor.address)
        original_count = sum(
            1
            for entry in entries
            if try_decrypt_entry(
                outsourcing.secure_index.layout, trapdoor.list_key, entry
            )
        )
        corrupted = bytearray(entries[0])
        corrupted[5] ^= 0xFF
        outsourcing.secure_index.replace_list(
            trapdoor.address, [bytes(corrupted)] + entries[1:]
        )
        matches = scheme.search(outsourcing.secure_index, trapdoor)
        assert len(matches) == original_count - 1

    def test_search_still_ranked_after_corruption(self, deployment):
        scheme, owner, outsourcing, _, _ = deployment
        trapdoor = scheme.trapdoor(owner.key, "network")
        entries = outsourcing.secure_index.lookup(trapdoor.address)
        outsourcing.secure_index.replace_list(
            trapdoor.address, entries[: len(entries) // 2]
        )
        ranking = scheme.search_ranked(outsourcing.secure_index, trapdoor)
        scores = [entry.score for entry in ranking]
        assert scores == sorted(scores, reverse=True)


class TestWrongCredentials:
    def test_foreign_credentials_find_nothing(self, deployment):
        scheme, _, outsourcing, server, _ = deployment
        foreign_owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        foreign_owner.setup(generate_corpus(3, seed=1, vocabulary_size=100))
        stranger = DataUser(
            scheme,
            foreign_owner.authorize_user(),
            Channel(server.handle),
            foreign_owner.analyzer,
        )
        assert stranger.search_ranked_topk("network", 5) == []

    def test_right_trapdoor_wrong_file_key_fails_closed(self, deployment):
        scheme, owner, _, server, _ = deployment
        credentials = owner.authorize_user()
        from dataclasses import replace

        from repro.crypto import generate_key

        bad = replace(credentials, file_key=generate_key())
        user = DataUser(scheme, bad, Channel(server.handle), owner.analyzer)
        with pytest.raises(IntegrityError):
            user.search_ranked_topk("network", 1)


class TestMalformedTraffic:
    def test_garbage_request_rejected(self, deployment):
        _, _, _, server, _ = deployment
        with pytest.raises(ProtocolError):
            server.handle(b"\x00\x01\x02 garbage")

    def test_garbage_trapdoor_bytes_fail_safely(self, deployment):
        _, _, _, server, _ = deployment
        request = SearchRequest(trapdoor_bytes=b"\x00")
        with pytest.raises(ReproError):
            server.handle(request.to_bytes())

    def test_truncated_trapdoor_yields_no_matches(self, deployment):
        scheme, owner, _, server, _ = deployment
        real = scheme.trapdoor(owner.key, "network").serialize()
        # Valid framing, wrong key material: decodes but matches nothing.
        request = SearchRequest(trapdoor_bytes=real[:-4] + b"\x00" * 4)
        from repro.cloud import SearchResponse

        response = SearchResponse.from_bytes(server.handle(request.to_bytes()))
        assert response.matches == ()
