"""Integration: serialize index + keys, restore elsewhere, search works.

Models the real deployment: the index travels to the cloud as bytes,
keys travel to users as bytes; everything must survive the trip.
"""

import pytest

from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.core.secure_index import SecureIndex
from repro.crypto.keys import SchemeKey
from repro.corpus import generate_corpus
from repro.ir import Analyzer, InvertedIndex


@pytest.fixture(scope="module")
def built():
    documents = generate_corpus(25, seed=31, vocabulary_size=250)
    analyzer = Analyzer()
    index = InvertedIndex()
    for document in documents:
        index.add_document(document.doc_id, analyzer.analyze(document.text))
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    result = scheme.build_index(key, index)
    return scheme, key, result


class TestIndexPersistence:
    def test_search_identical_after_roundtrip(self, built):
        scheme, key, result = built
        restored = SecureIndex.deserialize(result.secure_index.serialize())
        trapdoor = scheme.trapdoor(key, "network")
        original = scheme.search_ranked(result.secure_index, trapdoor)
        replayed = scheme.search_ranked(restored, trapdoor)
        assert [r.file_id for r in original] == [r.file_id for r in replayed]
        assert [r.score for r in original] == [r.score for r in replayed]

    def test_sizes_preserved(self, built):
        _, _, result = built
        restored = SecureIndex.deserialize(result.secure_index.serialize())
        assert restored.size_bytes() == result.secure_index.size_bytes()
        assert restored.num_lists == result.secure_index.num_lists


class TestKeyPersistence:
    def test_restored_key_generates_identical_trapdoors(self, built):
        scheme, key, _ = built
        restored = SchemeKey.deserialize(key.serialize())
        assert scheme.trapdoor(restored, "network") == scheme.trapdoor(
            key, "network"
        )

    def test_restored_user_bundle_searches(self, built):
        scheme, key, result = built
        user_key = SchemeKey.deserialize(key.trapdoor_only().serialize())
        trapdoor = scheme.trapdoor(user_key, "network")
        assert scheme.search_ranked(result.secure_index, trapdoor)

    def test_restored_owner_key_rebuilds_same_opm(self, built):
        scheme, key, _ = built
        restored = SchemeKey.deserialize(key.serialize())
        original_opm = scheme.opm_for_term(key, "network")
        restored_opm = scheme.opm_for_term(restored, "network")
        for level in (1, 5, TEST_PARAMETERS.score_levels):
            assert original_opm.map_score(level, "f") == restored_opm.map_score(
                level, "f"
            )
