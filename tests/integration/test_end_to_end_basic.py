"""End-to-end integration: basic scheme, both retrieval protocols."""

import pytest

from repro.baselines.plaintext import PlaintextRankedSearch
from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.core import BasicRankedSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus
from repro.ir import stem


@pytest.fixture(scope="module")
def deployment():
    documents = generate_corpus(35, seed=22, vocabulary_size=300)
    scheme = BasicRankedSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents)
    server = CloudServer(
        outsourcing.secure_index, outsourcing.blob_store, can_rank=False
    )
    channel = Channel(server.handle)
    user = DataUser(scheme, owner.authorize_user(), channel, owner.analyzer)
    return documents, owner, server, channel, user


class TestOneRoundProtocol:
    def test_ranking_exactly_matches_plaintext(self, deployment):
        # No quantization in the basic scheme: user-side ranking over
        # exact float scores must equal the plaintext reference.
        _, owner, _, _, user = deployment
        term = stem("network")
        truth = PlaintextRankedSearch(owner.plain_index).search_ranked(term)
        hits = user.search_all_and_rank("network")
        assert [hit.file_id for hit in hits] == [r.file_id for r in truth]

    def test_all_matching_files_transferred(self, deployment):
        _, owner, _, channel, user = deployment
        channel.stats.reset()
        hits = user.search_all_and_rank("network")
        matches = owner.plain_index.document_frequency(stem("network"))
        assert len(hits) == matches
        assert channel.stats.round_trips == 1

    def test_texts_decrypt_correctly(self, deployment):
        documents, _, _, _, user = deployment
        by_id = {document.doc_id: document.text for document in documents}
        for hit in user.search_all_and_rank("protocol"):
            assert hit.text == by_id[hit.file_id]


class TestTwoRoundProtocol:
    def test_topk_matches_one_round_prefix(self, deployment):
        _, _, _, _, user = deployment
        full = user.search_all_and_rank("network")
        topk = user.search_two_round_topk("network", 4)
        assert [hit.file_id for hit in topk] == [
            hit.file_id for hit in full[:4]
        ]

    def test_costs_two_round_trips(self, deployment):
        _, _, _, channel, user = deployment
        channel.stats.reset()
        user.search_two_round_topk("network", 3)
        assert channel.stats.round_trips == 2

    def test_saves_bandwidth_vs_one_round(self, deployment):
        _, _, _, channel, user = deployment
        channel.stats.reset()
        user.search_all_and_rank("network")
        one_round_bytes = channel.stats.total_bytes
        channel.stats.reset()
        user.search_two_round_topk("network", 3)
        two_round_bytes = channel.stats.total_bytes
        assert two_round_bytes < one_round_bytes / 2

    def test_second_round_leaks_topk_set_to_server(self, deployment):
        _, _, server, _, user = deployment
        user.search_two_round_topk("network", 3)
        fetch_observation = server.log.observations[-1]
        assert fetch_observation.address == b""
        assert len(fetch_observation.returned_file_ids) == 3


class TestServerCannotRank:
    def test_unranked_server_response_order_is_not_score_order(
        self, deployment
    ):
        # The server returns index (file-id) order; with semantically
        # secure score fields it can do no better.
        _, owner, server, _, user = deployment
        user.search_all_and_rank("network")
        observation = next(
            o for o in reversed(server.log.observations) if o.address
        )
        assert list(observation.matched_file_ids) == sorted(
            observation.matched_file_ids
        )

    def test_score_fields_look_random_to_server(self, deployment):
        _, _, server, _, user = deployment
        user.search_all_and_rank("network")
        observation = next(
            o for o in reversed(server.log.observations) if o.address
        )
        # Randomized encryption: all score fields distinct even though
        # many underlying scores collide.
        assert len(set(observation.score_fields)) == len(
            observation.score_fields
        )
