"""Cross-scheme integration: the Section III-C / IV trade-off, measured."""

import pytest

from repro.analysis.leakage import profile_search
from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.core import BasicRankedSSE, EfficientRSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus


@pytest.fixture(scope="module")
def both_deployments():
    documents = generate_corpus(40, seed=23, vocabulary_size=300)

    rsse = EfficientRSSE(TEST_PARAMETERS)
    rsse_owner = DataOwner(rsse)
    rsse_out = rsse_owner.setup(documents)
    rsse_server = CloudServer(
        rsse_out.secure_index, rsse_out.blob_store, can_rank=True
    )
    rsse_channel = Channel(rsse_server.handle)
    rsse_user = DataUser(
        rsse, rsse_owner.authorize_user(), rsse_channel, rsse_owner.analyzer
    )

    basic = BasicRankedSSE(TEST_PARAMETERS)
    basic_owner = DataOwner(basic)
    basic_out = basic_owner.setup(documents)
    basic_server = CloudServer(
        basic_out.secure_index, basic_out.blob_store, can_rank=False
    )
    basic_channel = Channel(basic_server.handle)
    basic_user = DataUser(
        basic, basic_owner.authorize_user(), basic_channel,
        basic_owner.analyzer,
    )
    return (
        (rsse_server, rsse_channel, rsse_user),
        (basic_server, basic_channel, basic_user),
    )


class TestBandwidthTradeoff:
    def test_rsse_topk_beats_basic_one_round_bandwidth(self, both_deployments):
        (_, rsse_channel, rsse_user), (_, basic_channel, basic_user) = (
            both_deployments
        )
        rsse_channel.stats.reset()
        rsse_user.search_ranked_topk("network", 5)
        basic_channel.stats.reset()
        basic_user.search_all_and_rank("network")
        assert (
            rsse_channel.stats.total_bytes
            < basic_channel.stats.total_bytes / 2
        )

    def test_rsse_needs_one_round_basic_topk_needs_two(self, both_deployments):
        (_, rsse_channel, rsse_user), (_, basic_channel, basic_user) = (
            both_deployments
        )
        rsse_channel.stats.reset()
        rsse_user.search_ranked_topk("network", 5)
        basic_channel.stats.reset()
        basic_user.search_two_round_topk("network", 5)
        assert rsse_channel.stats.round_trips == 1
        assert basic_channel.stats.round_trips == 2

    def test_same_topk_sets_modulo_quantization(self, both_deployments):
        (_, _, rsse_user), (_, _, basic_user) = both_deployments
        k = 10
        rsse_ids = {h.file_id for h in rsse_user.search_ranked_topk("network", k)}
        basic_ids = {
            h.file_id for h in basic_user.search_two_round_topk("network", k)
        }
        # Quantization can flip near-ties at the boundary; demand strong
        # overlap rather than equality.
        assert len(rsse_ids & basic_ids) >= k - 2


class TestLeakageTradeoff:
    def test_rsse_leaks_order_basic_does_not(self, both_deployments):
        (rsse_server, _, rsse_user), (basic_server, _, basic_user) = (
            both_deployments
        )
        rsse_user.search_ranked_topk("protocol", 3)
        basic_user.search_all_and_rank("protocol")
        rsse_profile = profile_search(
            rsse_server.log, len(rsse_server.log.observations) - 1, "rsse"
        )
        basic_observation_index = max(
            index
            for index, observation in enumerate(basic_server.log.observations)
            if observation.address
        )
        basic_profile = profile_search(
            basic_server.log, basic_observation_index, "basic-one-round"
        )
        assert rsse_profile.ordered_pairs_learned > 0
        assert basic_profile.ordered_pairs_learned == 0

    def test_access_patterns_identical_between_schemes(self, both_deployments):
        (rsse_server, _, rsse_user), (basic_server, _, basic_user) = (
            both_deployments
        )
        rsse_user.search_ranked_topk("routing", 50)
        basic_user.search_all_and_rank("routing")
        rsse_matched = set(rsse_server.log.observations[-1].matched_file_ids)
        basic_observation = next(
            o for o in reversed(basic_server.log.observations) if o.address
        )
        assert rsse_matched == set(basic_observation.matched_file_ids)
