"""Unit tests for the metrics registry and its snapshots."""

import pytest

from repro.errors import ParameterError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError):
            registry.counter("repro_test_total").inc(-1)

    def test_counter_identity_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_total", shard=1)
        b = registry.counter("repro_test_total", shard=1)
        c = registry.counter("repro_test_total", shard=2)
        assert a is b
        assert a is not c

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_total", a=1, b=2)
        b = registry.counter("repro_test_total", b=2, a=1)
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ParameterError):
            registry.gauge("repro_test_total")

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            MetricsRegistry().counter("")

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("repro_test_level")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7.0

    def test_histogram_buckets_cumulative_invariant(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0, 0.1):
            histogram.observe(value)
        point = registry.snapshot().get("repro_test_seconds")
        assert point.bucket_counts == (2, 1, 1)  # <=0.1, <=1.0, +Inf
        assert point.count == 4 == sum(point.bucket_counts)
        assert point.value == pytest.approx(5.65)

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        for bad in ((), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ParameterError):
                registry.histogram("repro_bad", buckets=bad)

    def test_histogram_default_buckets(self):
        histogram = MetricsRegistry().histogram("repro_test_seconds")
        assert histogram.buckets == DEFAULT_BUCKETS


class TestSnapshot:
    def test_sorted_and_stable(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total", z=1).inc()
        registry.counter("a_total", a=1).inc()
        names = [
            (point.name, point.labels)
            for point in registry.snapshot().points
        ]
        assert names == sorted(names)
        assert registry.to_json() == registry.to_json()

    def test_value_defaults_to_zero(self):
        snapshot = MetricsRegistry().snapshot()
        assert snapshot.value("never_touched_total") == 0.0

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc()
        registry.reset()
        assert len(registry.snapshot()) == 0

    def test_merged_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_test_total").inc(2)
        b.counter("repro_test_total").inc(3)
        merged = MetricsSnapshot.merged([a.snapshot(), b.snapshot()])
        assert merged.value("repro_test_total") == 5.0

    def test_merged_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("repro_test_level").set(1)
        b.gauge("repro_test_level").set(9)
        merged = MetricsSnapshot.merged([a.snapshot(), b.snapshot()])
        assert merged.value("repro_test_level") == 9.0

    def test_merged_histograms_add_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, value in ((a, 0.05), (b, 0.5)):
            registry.histogram(
                "repro_test_seconds", buckets=(0.1, 1.0)
            ).observe(value)
        merged = MetricsSnapshot.merged([a.snapshot(), b.snapshot()])
        point = merged.get("repro_test_seconds")
        assert point.bucket_counts == (1, 1, 0)
        assert point.count == 2

    def test_merged_rejects_kind_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_test").inc()
        b.gauge("repro_test").set(1)
        with pytest.raises(ParameterError):
            MetricsSnapshot.merged([a.snapshot(), b.snapshot()])

    def test_merged_rejects_bucket_geometry_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("repro_test_seconds", buckets=(1.0,)).observe(0.5)
        b.histogram("repro_test_seconds", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ParameterError):
            MetricsSnapshot.merged([a.snapshot(), b.snapshot()])

    def test_snapshot_is_immutable_view(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc()
        snapshot = registry.snapshot()
        counter.inc(100)
        assert snapshot.value("repro_test_total") == 1.0
