"""Unit tests for the JSONL exporter, validator, and renderers."""

import json

import pytest

from repro.errors import ParameterError
from repro.obs import Obs
from repro.obs.export import (
    export_jsonl,
    load_jsonl,
    render_prometheus,
    render_report,
    validate_records,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import FakeClock


def traced_bundle() -> Obs:
    obs = Obs.enabled(clock=FakeClock())
    with obs.tracer.span("cluster.handle_resilient", requests=1):
        with obs.tracer.span("shard.dispatch", shard=0):
            with obs.tracer.span("retry.attempt", attempt=1):
                pass
    obs.metrics.counter("repro_test_total", kind="search").inc(3)
    obs.metrics.histogram(
        "repro_test_seconds", buckets=(0.1, 1.0)
    ).observe(0.05)
    obs.leakage.record(b"addr", ("d1", "d2"), ("d1",), trace_id=1)
    return obs


class TestRoundTrip:
    def test_export_validates_clean(self):
        assert validate_records(traced_bundle().export_jsonl()) == []

    def test_export_is_deterministic(self):
        assert (
            traced_bundle().export_jsonl()
            == traced_bundle().export_jsonl()
        )

    def test_load_rebuilds_everything(self):
        dump = load_jsonl(traced_bundle().export_jsonl())
        assert [span.name for span in dump.spans] == [
            "cluster.handle_resilient",
            "shard.dispatch",
            "retry.attempt",
        ]
        (root,) = dump.roots()
        (dispatch,) = dump.children(root)
        (attempt,) = dump.children(dispatch)
        assert attempt.attrs == {"attempt": 1}
        assert attempt.duration_s > 0
        assert len(dump.metrics) == 2
        (event,) = dump.leakage
        assert event.matched_file_ids == ("d1", "d2")
        assert event.trace_id == 1

    def test_meta_header_first(self):
        first = json.loads(
            traced_bundle().export_jsonl().splitlines()[0]
        )
        assert first == {
            "type": "meta",
            "format": "repro-obs",
            "version": 1,
        }

    def test_export_without_tracer_or_metrics(self):
        artifact = export_jsonl()
        assert validate_records(artifact) == []
        dump = load_jsonl(artifact)
        assert dump.spans == () and dump.metrics == ()


class TestValidator:
    def test_empty_artifact(self):
        assert validate_records("") == ["artifact is empty"]

    def test_missing_meta_header(self):
        line = json.dumps({"type": "metric", "name": "x",
                           "kind": "counter", "labels": {}, "value": 1})
        problems = validate_records(line)
        assert any("meta" in problem for problem in problems)

    def test_not_json(self):
        problems = validate_records("not json at all")
        assert any("not JSON" in problem for problem in problems)

    def test_unknown_type(self):
        artifact = traced_bundle().export_jsonl() + json.dumps(
            {"type": "mystery"}
        )
        assert any(
            "unknown record type" in problem
            for problem in validate_records(artifact)
        )

    def test_span_missing_field(self):
        artifact = traced_bundle().export_jsonl() + json.dumps(
            {"type": "span", "trace_id": 1, "span_id": 99}
        )
        problems = validate_records(artifact)
        assert any("missing field" in problem for problem in problems)

    def test_span_time_travel(self):
        artifact = traced_bundle().export_jsonl() + json.dumps(
            {
                "type": "span",
                "trace_id": 1,
                "span_id": 99,
                "parent_id": None,
                "name": "bad",
                "start_s": 2.0,
                "end_s": 1.0,
                "attrs": {},
            }
        )
        assert any(
            "ends before it starts" in problem
            for problem in validate_records(artifact)
        )

    def test_unresolvable_parent(self):
        artifact = traced_bundle().export_jsonl() + json.dumps(
            {
                "type": "span",
                "trace_id": 1,
                "span_id": 99,
                "parent_id": 12345,
                "name": "orphan",
                "start_s": 0.0,
                "end_s": 1.0,
                "attrs": {},
            }
        )
        assert any(
            "parent span 12345 not found" in problem
            for problem in validate_records(artifact)
        )

    def test_load_raises_on_problems(self):
        with pytest.raises(ParameterError):
            load_jsonl("garbage")


class TestRenderers:
    def test_prometheus_histogram_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_test_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_test_seconds_count 2" in text

    def test_prometheus_counter_labels(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", shard=3).inc(2)
        text = render_prometheus(registry.snapshot())
        assert 'repro_test_total{shard="3"} 2.0' in text

    def test_report_contains_tree_and_sections(self):
        obs = traced_bundle()
        report = render_report(load_jsonl(obs.export_jsonl()))
        assert "cluster.handle_resilient" in report
        assert "retry.attempt" in report
        assert "100.0%" in report
        assert "== metrics" in report
        assert "== leakage events" in report
        assert obs.report() == report

    def test_report_of_empty_dump(self):
        report = render_report(load_jsonl(export_jsonl()))
        assert "0 root span(s)" in report


class TestLeakageReplay:
    def test_server_log_from_events_replays_patterns(self):
        from repro.analysis.leakage import (
            profile_search,
            server_log_from_events,
        )

        obs = Obs.enabled(clock=FakeClock())
        obs.leakage.record(b"addr-1", ("d1", "d2", "d3"), ("d1",))
        obs.leakage.record(b"addr-1", ("d1", "d2", "d3"), ("d1",))
        obs.leakage.record(b"addr-2", ("d9",), ("d9",))
        # Round-trip through the JSONL artifact, as CI tooling would.
        events = load_jsonl(obs.export_jsonl()).leakage
        log = server_log_from_events(events)
        assert len(log.observations) == 3
        pattern = log.search_pattern()
        assert sorted(pattern.values()) == [1, 2]
        profile = profile_search(log, 1, "rsse")
        assert profile.search_pattern_hits == 1
        assert profile.access_pattern == ("d1", "d2", "d3")
        assert profile.ordered_pairs_learned == 3
