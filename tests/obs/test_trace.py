"""Unit tests for the tracer: parenting, determinism, the off switch."""

import threading

import pytest

from repro.errors import ParameterError
from repro.obs.trace import (
    NOOP_SPAN,
    NOOP_TRACER,
    FakeClock,
    NoopTracer,
    Tracer,
)


class TestSpanTree:
    def test_root_starts_new_trace(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        (a, b) = tracer.spans
        assert (a.trace_id, b.trace_id) == (1, 2)
        assert a.parent_id is None and b.parent_id is None

    def test_nesting_is_thread_local(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert tracer.current() is child
            assert tracer.current() is root
        assert tracer.current() is None
        root_span, child_span = sorted(
            tracer.spans, key=lambda span: span.span_id
        )
        assert child_span.parent_id == root_span.span_id
        assert child_span.trace_id == root_span.trace_id

    def test_explicit_parent_bridges_threads(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            def worker():
                # The worker thread has no thread-local current span;
                # without parent= this would start a fresh trace.
                with tracer.span("dispatch", parent=root):
                    pass
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        dispatch = next(
            span for span in tracer.spans if span.name == "dispatch"
        )
        assert dispatch.trace_id == root.trace_id
        assert dispatch.parent_id == root.span_id

    def test_span_ids_are_deterministic(self):
        def run():
            tracer = Tracer(clock=FakeClock())
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            return [
                (s.trace_id, s.span_id, s.parent_id, s.name,
                 s.start_s, s.end_s)
                for s in tracer.spans
            ]
        assert run() == run()

    def test_exception_sets_error_attr_and_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "ValueError"
        assert span.end_s is not None

    def test_annotate_hits_current_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            tracer.annotate(fault="drop")
        assert tracer.spans[0].attrs == {"fault": "drop"}
        tracer.annotate(ignored=True)  # no current span: dropped

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            Tracer().span("")

    def test_fake_clock_timings(self):
        tracer = Tracer(clock=FakeClock(step_s=0.5))
        with tracer.span("a"):
            pass
        (span,) = tracer.spans
        assert (span.start_s, span.end_s) == (0.0, 0.5)
        assert span.duration_s == 0.5

    def test_retention_cap_drops_oldest(self):
        tracer = Tracer(clock=FakeClock(), max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [span.name for span in tracer.spans] == ["s2", "s3", "s4"]

    def test_reset_keeps_ids_monotonic(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        tracer.reset()
        with tracer.span("b"):
            pass
        (span,) = tracer.spans
        assert span.trace_id == 2 and span.span_id == 2

    def test_trace_ids(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(2):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        assert tracer.trace_ids() == (1, 2)


class TestNoop:
    def test_surface_matches_but_records_nothing(self):
        tracer = NoopTracer()
        assert not tracer.enabled
        with tracer.span("anything", parent=None, attr=1) as span:
            assert span is NOOP_SPAN
            span.set(more=2)
            tracer.annotate(even_more=3)
        assert tracer.spans == ()
        assert tracer.current() is None
        tracer.reset()

    def test_noop_span_attrs_never_accumulate(self):
        NOOP_SPAN.set(leak=True)
        assert NOOP_SPAN.attrs == {}

    def test_real_tracer_ignores_noop_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root", parent=NOOP_SPAN):
            pass
        (span,) = tracer.spans
        assert span.parent_id is None

    def test_shared_instance(self):
        assert isinstance(NOOP_TRACER, NoopTracer)


class TestValidation:
    def test_bad_max_spans(self):
        with pytest.raises(ParameterError):
            Tracer(max_spans=0)

    def test_bad_clock_step(self):
        with pytest.raises(ParameterError):
            FakeClock(step_s=0.0)
