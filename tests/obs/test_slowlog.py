"""Unit tests for the sampled slow-query log."""

import pytest

from repro.errors import ParameterError
from repro.obs import SlowQuery, SlowQueryLog


def phases(*pairs):
    return tuple(pairs)


class TestThreshold:
    def test_slow_queries_are_kept(self):
        log = SlowQueryLog(threshold_s=0.1)
        log.record("search", 7, phases(("decode", 0.05), ("rank", 0.06)))
        (entry,) = log.entries
        assert entry.trace_id == 7
        assert entry.kind == "search"
        assert entry.total_s == pytest.approx(0.11)
        assert not entry.sampled

    def test_fast_queries_are_dropped(self):
        log = SlowQueryLog(threshold_s=0.1)
        log.record("search", 1, phases(("decode", 0.01)))
        assert len(log) == 0
        assert log.seen == 1

    def test_zero_threshold_keeps_everything(self):
        log = SlowQueryLog(threshold_s=0.0)
        for trace in range(5):
            log.record("search", trace, phases(("decode", 0.0)))
        assert len(log) == 5

    def test_total_is_sum_of_phases(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.record(
            "multi-search",
            3,
            phases(("decode", 1.0), ("aggregate", 2.0), ("respond", 4.0)),
        )
        (entry,) = log.entries
        assert entry.total_s == pytest.approx(7.0)
        assert dict(entry.phases)["aggregate"] == pytest.approx(2.0)


class TestSampling:
    def test_every_nth_fast_query_is_sampled(self):
        log = SlowQueryLog(threshold_s=10.0, sample_every=3)
        for trace in range(1, 10):
            log.record("search", trace, phases(("decode", 0.001)))
        # Counter-based: the 3rd, 6th, and 9th arrivals are kept.
        assert [entry.trace_id for entry in log.entries] == [3, 6, 9]
        assert all(entry.sampled for entry in log.entries)

    def test_sampling_is_deterministic(self):
        def run():
            log = SlowQueryLog(threshold_s=10.0, sample_every=4)
            for trace in range(1, 13):
                log.record("search", trace, phases(("rank", 0.002)))
            return [entry.trace_id for entry in log.entries]

        assert run() == run()

    def test_slow_entries_are_not_marked_sampled(self):
        log = SlowQueryLog(threshold_s=0.0, sample_every=1)
        log.record("search", 1, phases(("decode", 1.0)))
        (entry,) = log.entries
        assert not entry.sampled

    def test_sampling_disabled_by_default(self):
        log = SlowQueryLog(threshold_s=10.0)
        for trace in range(50):
            log.record("search", trace, phases(("decode", 0.001)))
        assert len(log) == 0


class TestCapacityAndReset:
    def test_ring_keeps_most_recent(self):
        log = SlowQueryLog(threshold_s=0.0, capacity=3)
        for trace in range(1, 8):
            log.record("search", trace, phases(("decode", 1.0)))
        assert [entry.trace_id for entry in log.entries] == [5, 6, 7]
        assert log.seen == 7

    def test_reset_drops_entries_but_not_the_counter(self):
        log = SlowQueryLog(threshold_s=0.0)
        log.record("search", 1, phases(("decode", 1.0)))
        log.reset()
        assert len(log) == 0
        assert log.seen == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError):
            SlowQueryLog(threshold_s=-0.1)
        with pytest.raises(ParameterError):
            SlowQueryLog(sample_every=-1)
        with pytest.raises(ParameterError):
            SlowQueryLog(capacity=0)


class TestSlowQueryRecord:
    def test_dict_round_trip(self):
        entry = SlowQuery(
            trace_id=9,
            kind="search",
            total_s=0.25,
            phases=phases(("decode", 0.05), ("rank", 0.2)),
            sampled=True,
            worker="2",
        )
        assert SlowQuery.from_dict(entry.as_dict()) == entry

    def test_worker_omitted_when_empty(self):
        entry = SlowQuery(
            trace_id=1,
            kind="search",
            total_s=0.2,
            phases=phases(("decode", 0.2)),
        )
        record = entry.as_dict()
        assert "worker" not in record
        assert SlowQuery.from_dict(record) == entry
