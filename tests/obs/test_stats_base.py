"""The one snapshot/reset/merge base under every stats bundle.

The PR 2 / PR 3 stats classes (``ChannelStats``, ``FaultStats``,
``RetryStats``, ``MappingStats``) each grew their own copies of
``snapshot``/``reset``/``merged``; this suite pins that they now share
:class:`repro.obs.base.StatsBase` — one implementation, so the
semantics (atomic snapshots, numeric merge, list extension) cannot
drift apart again — while the original call-site surfaces keep
working.
"""

from dataclasses import dataclass, field

import pytest

from repro.cloud.faults import FaultStats
from repro.cloud.network import ChannelSnapshot, ChannelStats
from repro.cloud.retry import RetryStats
from repro.crypto.stats import MappingStats
from repro.obs.base import StatsBase
from repro.obs.metrics import MetricsRegistry

ALL_STATS = (ChannelStats, FaultStats, RetryStats, MappingStats)


@dataclass
class _Sample(StatsBase):
    hits: int = 0
    total_s: float = 0.0
    notes: list = field(default_factory=list)


class TestSharedBase:
    @pytest.mark.parametrize("stats_class", ALL_STATS)
    def test_every_bundle_derives_from_stats_base(self, stats_class):
        assert issubclass(stats_class, StatsBase)

    @pytest.mark.parametrize("stats_class", ALL_STATS)
    def test_reset_zeroes_every_field(self, stats_class):
        stats = stats_class()
        for name in stats.as_dict():
            value = getattr(stats, name)
            if isinstance(value, list):
                value.append("x")
            else:
                setattr(stats, name, 3)
        stats.reset()
        assert all(not value for value in stats.as_dict().values())

    @pytest.mark.parametrize("stats_class", ALL_STATS)
    def test_merged_sums_fieldwise(self, stats_class):
        a, b = stats_class(), stats_class()
        for position, name in enumerate(a.as_dict()):
            if isinstance(getattr(a, name), list):
                continue
            setattr(a, name, position + 1)
            setattr(b, name, 10)
        merged = stats_class.merged([a, b])
        for position, (name, value) in enumerate(a.as_dict().items()):
            if isinstance(value, list):
                continue
            assert getattr(merged, name) == position + 1 + 10

    def test_snapshot_is_independent_copy(self):
        stats = _Sample()
        stats.hits = 2
        stats.notes.append("first")
        snapshot = stats.snapshot()
        stats.hits = 99
        stats.notes.append("second")
        assert snapshot.hits == 2
        assert tuple(snapshot.notes) == ("first",)

    def test_merged_extends_list_fields(self):
        a, b = _Sample(), _Sample()
        a.notes.append("a")
        b.notes.append("b")
        assert list(_Sample.merged([a, b]).notes) == ["a", "b"]

    def test_merged_accepts_snapshots_and_stats_mixed(self):
        live = _Sample()
        live.hits = 1
        merged = _Sample.merged([live, live.snapshot()])
        assert merged.hits == 2


class TestFacades:
    def test_channel_stats_snapshot_type_is_preserved(self):
        stats = ChannelStats(round_trips=2, failed_calls=1)
        snapshot = stats.snapshot()
        assert isinstance(snapshot, ChannelSnapshot)
        assert snapshot.round_trips == 2
        # Snapshots snapshot to themselves, so merged() accepts them.
        assert snapshot.snapshot() is snapshot

    def test_channel_stats_merged_mixed_inputs(self):
        live = ChannelStats(round_trips=1)
        frozen = ChannelStats(round_trips=2).snapshot()
        merged = ChannelStats.merged([live, frozen])
        assert merged.round_trips == 3

    def test_fault_stats_derived_property_survives(self):
        stats = FaultStats(drops=2, corruptions=1, crash_rejections=4)
        assert stats.faults == 7
        assert stats.snapshot().faults == 7

    def test_mapping_stats_publish_to_registry(self):
        stats = MappingStats(hgd_draws=5, choices=2)
        registry = MetricsRegistry()
        stats.publish_to(registry, layer="test")
        snapshot = registry.snapshot()
        assert snapshot.value("repro_opm_hgd_draws", layer="test") == 5.0
        assert snapshot.value("repro_opm_choices", layer="test") == 2.0
        # Cumulative republish overwrites instead of double-counting.
        stats.hgd_draws = 8
        stats.publish_to(registry, layer="test")
        snapshot = registry.snapshot()
        assert snapshot.value("repro_opm_hgd_draws", layer="test") == 8.0

    def test_mapping_stats_merged_rolls_up_per_term_opms(self):
        per_term = [MappingStats(hgd_draws=n) for n in (1, 2, 3)]
        assert MappingStats.merged(per_term).hgd_draws == 6
