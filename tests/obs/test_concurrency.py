"""Deflake guard: snapshots of a hammered registry are never torn.

The PR 2 retrospective showed where concurrency flakes come from:
sampling counters that other threads are mid-update.  The metrics
registry's contract is that :meth:`MetricsRegistry.snapshot` is atomic
— every invariant that holds under the lock holds in every snapshot.
These tests hammer the registry (and the tracer) from many threads
while sampling continuously, asserting structural invariants on every
sample rather than sleeping and hoping.
"""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import FakeClock, Tracer

WRITER_THREADS = 4
UPDATES_PER_THREAD = 400


class TestUntornSnapshots:
    def test_paired_counters_never_observed_torn(self):
        """Two counters bumped together under the registry lock.

        A writer increments ``a`` then ``b`` inside one lock-holding
        helper...  it cannot: the public API takes the lock per update.
        So instead the invariant is the *per-counter* atomicity plus
        exact final totals — a snapshot never shows a half-applied
        increment (non-integer value) and never goes backwards.
        """
        registry = MetricsRegistry()
        stop = threading.Event()
        seen: list[float] = []

        def writer():
            counter = registry.counter("repro_hammer_total")
            for _ in range(UPDATES_PER_THREAD):
                counter.inc()

        def sampler():
            while not stop.is_set():
                value = registry.snapshot().value("repro_hammer_total")
                seen.append(value)

        threads = [
            threading.Thread(target=writer)
            for _ in range(WRITER_THREADS)
        ]
        watcher = threading.Thread(target=sampler)
        watcher.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()

        total = registry.snapshot().value("repro_hammer_total")
        assert total == WRITER_THREADS * UPDATES_PER_THREAD
        assert all(value == int(value) for value in seen)
        assert seen == sorted(seen)  # counters are monotonic

    def test_histogram_count_always_equals_bucket_sum(self):
        registry = MetricsRegistry()
        stop = threading.Event()
        problems: list[str] = []

        def writer(offset: float):
            histogram = registry.histogram(
                "repro_hammer_seconds", buckets=(0.1, 1.0, 10.0)
            )
            for index in range(UPDATES_PER_THREAD):
                histogram.observe(offset + (index % 30))

        def sampler():
            while not stop.is_set():
                point = registry.snapshot().get("repro_hammer_seconds")
                if point is None:
                    continue
                if point.count != sum(point.bucket_counts):
                    problems.append(
                        f"count {point.count} != bucket sum "
                        f"{sum(point.bucket_counts)}"
                    )

        threads = [
            threading.Thread(target=writer, args=(thread * 0.01,))
            for thread in range(WRITER_THREADS)
        ]
        watcher = threading.Thread(target=sampler)
        watcher.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()

        assert problems == []
        point = registry.snapshot().get("repro_hammer_seconds")
        assert point.count == WRITER_THREADS * UPDATES_PER_THREAD

    def test_instrument_creation_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(WRITER_THREADS)
        instruments = []

        def creator():
            barrier.wait()
            instruments.append(registry.counter("repro_race_total"))

        threads = [
            threading.Thread(target=creator)
            for _ in range(WRITER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(instrument) for instrument in instruments}) == 1


class TestTracerUnderThreads:
    def test_span_ids_unique_across_threads(self):
        tracer = Tracer(clock=FakeClock())
        spans_per_thread = 100

        def worker():
            for index in range(spans_per_thread):
                with tracer.span(f"work{index}"):
                    pass

        threads = [
            threading.Thread(target=worker)
            for _ in range(WRITER_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        spans = tracer.spans
        assert len(spans) == WRITER_THREADS * spans_per_thread
        assert len({span.span_id for span in spans}) == len(spans)
        # Each thread's roots are their own traces.
        assert len({span.trace_id for span in spans}) == len(spans)
