"""Unit tests for cross-process merging: labels, dumps, remote parents."""

import pytest

from repro.obs import (
    LeakageLog,
    MetricsRegistry,
    MetricsSnapshot,
    Obs,
    RemoteParent,
    SlowQueryLog,
    dump_jsonl,
    load_jsonl,
    merge_dumps,
    render_prometheus,
    validate_records,
)
from repro.obs.trace import FakeClock, Tracer

STRIDE = 1 << 48


def worker_bundle(shard: int, parent: RemoteParent | None = None) -> Obs:
    """One worker-shaped bundle with a disjoint tracer id range."""
    obs = Obs(
        tracer=Tracer(clock=FakeClock(), id_base=(shard + 1) * STRIDE),
        metrics=MetricsRegistry(),
        leakage=LeakageLog(),
        slowlog=SlowQueryLog(threshold_s=0.0),
    )
    with obs.tracer.span("server.handle", parent=parent, kind="search"):
        pass
    obs.metrics.counter("repro_server_searches_total").inc()
    obs.leakage.record(b"addr", ("d1",), ("d1",), trace_id=1)
    obs.slowlog.record("search", 1, (("decode", 0.01),))
    return obs


class TestWithLabels:
    def test_adds_label_to_every_point(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", kind="a").inc()
        registry.gauge("repro_y").set(2.0)
        labeled = registry.snapshot().with_labels(worker="3")
        assert all(
            dict(point.labels)["worker"] == "3" for point in labeled
        )

    def test_new_labels_win_on_collision(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", worker="original").inc(5)
        labeled = registry.snapshot().with_labels(worker="override")
        (point,) = labeled.points
        assert dict(point.labels) == {"worker": "override"}
        assert point.value == 5.0


class TestMergedAcrossProcesses:
    def test_identical_series_stay_distinct_under_labels(self):
        snapshots = []
        for shard in ("0", "1"):
            registry = MetricsRegistry()
            registry.counter("repro_server_searches_total").inc(int(shard) + 1)
            snapshots.append(registry.snapshot().with_labels(worker=shard))
        merged = MetricsSnapshot.merged(snapshots)
        assert merged.value(
            "repro_server_searches_total", worker="0"
        ) == 1.0
        assert merged.value(
            "repro_server_searches_total", worker="1"
        ) == 2.0

    def test_unlabeled_collision_sums(self):
        snapshots = []
        for _ in range(2):
            registry = MetricsRegistry()
            registry.counter("repro_server_searches_total").inc(3)
            snapshots.append(registry.snapshot())
        merged = MetricsSnapshot.merged(snapshots)
        assert merged.value("repro_server_searches_total") == 6.0


class TestMergeDumps:
    def merged_cluster(self):
        frontend = Obs.enabled(clock=FakeClock())
        with frontend.tracer.span("net.request", kind="search") as span:
            parent = RemoteParent(span.trace_id, span.span_id)
        frontend.metrics.gauge(
            "repro_net_breaker_state", worker="0"
        ).set(0.0)
        frontend.metrics.gauge(
            "repro_net_breaker_state", worker="1"
        ).set(2.0)
        workers = [worker_bundle(0, parent), worker_bundle(1)]
        labeled = [("frontend", load_jsonl(frontend.export_jsonl()))]
        labeled.extend(
            (str(shard), load_jsonl(obs.export_jsonl()))
            for shard, obs in enumerate(workers)
        )
        return merge_dumps(labeled)

    def test_spans_tagged_and_id_disjoint(self):
        dump = self.merged_cluster()
        workers = {
            span.attrs.get("worker") for span in dump.spans
        }
        assert workers == {"frontend", "0", "1"}
        assert len({span.span_id for span in dump.spans}) == len(
            dump.spans
        )

    def test_remote_parent_stitches_across_processes(self):
        dump = self.merged_cluster()
        (root,) = [
            span for span in dump.spans if span.name == "net.request"
        ]
        stitched = [
            span
            for span in dump.spans
            if span.parent_id == root.span_id and span is not root
        ]
        assert len(stitched) == 1
        assert stitched[0].attrs["worker"] == "0"
        assert stitched[0].trace_id == root.trace_id

    def test_leakage_and_slow_tagged_without_overwrite(self):
        dump = self.merged_cluster()
        assert sorted(event.worker for event in dump.leakage) == ["0", "1"]
        assert sorted(entry.worker for entry in dump.slow) == ["0", "1"]

    def test_existing_worker_labels_survive_the_merge(self):
        # The front end publishes per-shard breaker gauges; its own
        # "frontend" label must not clobber them into one series.
        dump = self.merged_cluster()
        merged = MetricsSnapshot(points=dump.metrics)
        assert merged.value("repro_net_breaker_state", worker="0") == 0.0
        assert merged.value("repro_net_breaker_state", worker="1") == 2.0

    def test_merged_dump_round_trips_through_jsonl(self):
        dump = self.merged_cluster()
        text = dump_jsonl(dump)
        assert validate_records(text) == []
        reloaded = load_jsonl(text)
        assert reloaded.spans == dump.spans
        assert reloaded.metrics == dump.metrics
        assert reloaded.leakage == dump.leakage
        assert reloaded.slow == dump.slow
        assert dump_jsonl(reloaded) == text

    def test_merged_prometheus_has_worker_series(self):
        dump = self.merged_cluster()
        text = render_prometheus(MetricsSnapshot(points=dump.metrics))
        assert 'repro_server_searches_total{worker="0"}' in text
        assert 'repro_server_searches_total{worker="1"}' in text


class TestRemoteParentValidation:
    def test_worker_local_dump_validates_despite_unresolved_parent(self):
        # A worker's own artifact contains spans whose parent lives in
        # another process; the remote_parent attr exempts them from
        # the parent-resolvability check.
        obs = worker_bundle(0, RemoteParent(12345, 67890))
        assert validate_records(obs.export_jsonl()) == []

    def test_remote_parent_rejects_unset_ids(self):
        with pytest.raises(Exception):
            RemoteParent(0, 1)
