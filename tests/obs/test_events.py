"""Unit tests for the leakage-event stream."""

from repro.obs.events import LeakageEvent, LeakageLog, trapdoor_digest


class TestDigest:
    def test_stable_and_hex(self):
        digest = trapdoor_digest(b"address-1")
        assert digest == trapdoor_digest(b"address-1")
        assert len(digest) == 32
        int(digest, 16)  # valid hex

    def test_never_the_raw_address(self):
        address = b"secret-index-address"
        assert address.hex() not in trapdoor_digest(address)

    def test_distinct_addresses_distinct_digests(self):
        assert trapdoor_digest(b"a") != trapdoor_digest(b"b")


class TestLog:
    def test_monotonic_query_ids(self):
        log = LeakageLog()
        first = log.record(b"a", ("d1",), ("d1",))
        second = log.record(b"b", ("d2", "d3"), ("d2",))
        assert (first.query_id, second.query_id) == (1, 2)
        assert len(log) == 2

    def test_search_pattern_via_equal_digests(self):
        log = LeakageLog()
        log.record(b"same", ("d1",), ("d1",))
        log.record(b"same", ("d1",), ("d1",))
        log.record(b"other", (), ())
        events = log.events
        assert events[0].trapdoor == events[1].trapdoor
        assert events[0].trapdoor != events[2].trapdoor

    def test_reset_keeps_counting(self):
        log = LeakageLog()
        log.record(b"a", (), ())
        log.reset()
        assert len(log) == 0
        assert log.record(b"b", (), ()).query_id == 2

    def test_round_trip_via_dict(self):
        event = LeakageEvent(
            query_id=7,
            trapdoor="ab" * 16,
            matched_file_ids=("d1", "d2"),
            returned_file_ids=("d1",),
            trace_id=3,
        )
        assert LeakageEvent.from_dict(event.as_dict()) == event

    def test_trace_id_defaults_untraced(self):
        log = LeakageLog()
        assert log.record(b"a", (), ()).trace_id == 0
