"""Unit tests for DataOwner / DataUser credential and protocol logic."""

import pytest

from repro.cloud.network import Channel
from repro.cloud.owner import DataOwner
from repro.cloud.server import CloudServer
from repro.cloud.user import DataUser
from repro.core.basic_scheme import BasicRankedSSE
from repro.core.params import TEST_PARAMETERS
from repro.core.rsse import EfficientRSSE
from repro.corpus.loader import Document
from repro.errors import ParameterError


def documents() -> list[Document]:
    return [
        Document(doc_id="d1", title="", text="network network network cache"),
        Document(doc_id="d2", title="", text="network cache cache storage"),
        Document(doc_id="d3", title="", text="storage protocols routing"),
    ]


class TestOwnerSetup:
    def test_rejects_empty_collection(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        with pytest.raises(ParameterError):
            owner.setup([])

    def test_outsourcing_contains_index_and_blobs(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        outsourcing = owner.setup(documents())
        assert outsourcing.secure_index.num_lists > 0
        assert len(outsourcing.blob_store) == 3

    def test_blobs_are_encrypted(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        outsourcing = owner.setup(documents())
        blob = outsourcing.blob_store.get("d1")
        assert b"network" not in blob

    def test_plain_index_stays_with_owner(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        owner.setup(documents())
        assert owner.plain_index.num_files == 3


class TestCredentials:
    def test_efficient_scheme_users_lack_z(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        owner.setup(documents())
        credentials = owner.authorize_user()
        assert credentials.scheme_key.z is None

    def test_basic_scheme_users_hold_z(self):
        owner = DataOwner(BasicRankedSSE(TEST_PARAMETERS))
        owner.setup(documents())
        credentials = owner.authorize_user()
        assert credentials.scheme_key.z is not None

    def test_file_key_shared(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        owner.setup(documents())
        a = owner.authorize_user()
        b = owner.authorize_user()
        assert a.file_key == b.file_key


class TestUserProtocolGuards:
    def _user(self, scheme):
        owner = DataOwner(scheme)
        outsourcing = owner.setup(documents())
        server = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=isinstance(scheme, EfficientRSSE),
        )
        return DataUser(
            scheme, owner.authorize_user(), Channel(server.handle),
            owner.analyzer,
        )

    def test_rsse_user_rejects_basic_protocols(self):
        user = self._user(EfficientRSSE(TEST_PARAMETERS))
        with pytest.raises(ParameterError):
            user.search_all_and_rank("network")
        with pytest.raises(ParameterError):
            user.search_two_round_topk("network", 2)

    def test_basic_user_rejects_rsse_protocol(self):
        user = self._user(BasicRankedSSE(TEST_PARAMETERS))
        with pytest.raises(ParameterError):
            user.search_ranked_topk("network", 2)

    def test_rejects_bad_k(self):
        user = self._user(EfficientRSSE(TEST_PARAMETERS))
        with pytest.raises(ParameterError):
            user.search_ranked_topk("network", 0)

    def test_decrypted_text_matches_original(self):
        user = self._user(EfficientRSSE(TEST_PARAMETERS))
        hits = user.search_ranked_topk("network", 1)
        assert hits[0].text in {d.text for d in documents()}

    def test_stop_word_query_rejected_by_analyzer(self):
        user = self._user(EfficientRSSE(TEST_PARAMETERS))
        with pytest.raises(ValueError):
            user.search_ranked_topk("the", 1)
