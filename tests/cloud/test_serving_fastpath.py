"""The serving fast path: ranked cache, single-pass ranking, batch
fan-out, and the bounded observation log.

The overhaul's acceptance contract is *byte equivalence*: the ranked
warm cache, the binary codec, and the grouped batch dispatch are pure
optimizations, so every response must be byte-identical across
{ranked cache on/off} x {batch vs. single dispatch}, and an owner
update must never leave a stale ranking behind in a warm cache.
"""

import pytest

from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.cloud.cluster import ClusterServer
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    SearchRequest,
    SearchResponse,
    detect_codec,
)
from repro.cloud.server import SearchObservation, ServerLog
from repro.cloud.updates import RemoteIndexMaintainer
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus.loader import Document
from repro.errors import ParameterError
from repro.obs import FakeClock, Obs

TOKEN = b"fastpath-update-token"
VOCAB = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


@pytest.fixture()
def world():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    documents = [
        Document(
            doc_id=f"doc{i}",
            title=f"doc {i}",
            text=" ".join(
                VOCAB[j % len(VOCAB)] for j in range(i, i + 12)
            )
            + " alpha" * (i % 5),
        )
        for i in range(12)
    ]
    outsourcing = owner.setup(documents)
    return scheme, owner, outsourcing


def search_bytes(scheme, key, keyword, k=3, codec=CODEC_JSON):
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(), top_k=k
    ).to_bytes(codec)


def make_server(outsourcing, cached: bool, **kwargs) -> CloudServer:
    return CloudServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        cache_searches=cached,
        update_token=TOKEN,
        **kwargs,
    )


class TestRankedCacheEquivalence:
    def test_byte_identical_cache_on_off(self, world):
        scheme, owner, outsourcing = world
        cached = make_server(outsourcing, cached=True)
        uncached = make_server(outsourcing, cached=False)
        for keyword in VOCAB * 2:  # second pass hits the warm cache
            for k in (1, 3, None):
                request = search_bytes(scheme, owner.key, keyword, k=k)
                assert cached.handle(request) == uncached.handle(request)
        assert cached.cache_hits > 0

    def test_warm_hit_serves_from_ranked_list(self, world):
        scheme, owner, outsourcing = world
        server = make_server(outsourcing, cached=True)
        request = search_bytes(scheme, owner.key, "alpha")
        address = scheme.trapdoor(owner.key, "alpha").address
        server.handle(request)
        posting = server.cache.get(address)
        assert posting.ranked is not None
        opm_values = [match.opm_value() for match in posting.ranked]
        assert opm_values == sorted(opm_values, reverse=True)

    def test_basic_scheme_cache_stores_no_ranking(self, world):
        _, _, outsourcing = world
        server = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=False,
            cache_searches=True,
        )
        scheme, owner, _ = world
        request = search_bytes(scheme, owner.key, "alpha", k=None)
        server.handle(request)
        address = scheme.trapdoor(owner.key, "alpha").address
        assert server.cache.get(address).ranked is None

    def test_observations_identical_cache_on_off(self, world):
        scheme, owner, outsourcing = world
        cached = make_server(outsourcing, cached=True)
        uncached = make_server(outsourcing, cached=False)
        for keyword in ("alpha", "beta", "alpha"):
            request = search_bytes(scheme, owner.key, keyword)
            cached.handle(request)
            uncached.handle(request)
        assert list(cached.log.observations) == list(
            uncached.log.observations
        )

    def test_cache_hit_ratio(self, world):
        scheme, owner, outsourcing = world
        server = make_server(outsourcing, cached=True)
        request = search_bytes(scheme, owner.key, "alpha")
        server.handle(request)
        assert server.cache.hit_ratio == 0.0
        server.handle(request)
        assert server.cache.hit_ratio == 0.5


class TestSinglePassRanking:
    def test_scanned_counter_reflects_one_pass(self, world):
        """Regression: rank_all's result used to be discarded and the
        matches re-scanned by top_k — two passes per query."""
        scheme, owner, outsourcing = world
        obs = Obs.enabled(clock=FakeClock())
        server = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            obs=obs,
        )
        request = search_bytes(scheme, owner.key, "alpha", k=3)
        server.handle(request)
        (rank_span,) = [
            span for span in obs.tracer.spans if span.name == "search.rank"
        ]
        (postings_span,) = [
            span
            for span in obs.tracer.spans
            if span.name == "search.postings"
        ]
        matched = postings_span.attrs["postings"]
        assert matched > 3
        assert rank_span.attrs["scanned"] == matched

    def test_warm_hit_scans_only_k(self, world):
        scheme, owner, outsourcing = world
        obs = Obs.enabled(clock=FakeClock())
        server = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            cache_searches=True,
            obs=obs,
        )
        request = search_bytes(scheme, owner.key, "alpha", k=2)
        server.handle(request)
        server.handle(request)
        rank_spans = [
            span for span in obs.tracer.spans if span.name == "search.rank"
        ]
        assert rank_spans[-1].attrs["scanned"] == 2
        assert rank_spans[-1].attrs["ranked_cache"] is True


class TestUpdateInvalidation:
    def _deploy(self, world, codec):
        scheme, owner, outsourcing = world
        server = make_server(outsourcing, cached=True)
        maintainer = RemoteIndexMaintainer(
            owner, Channel(server.handle), TOKEN, codec=codec
        )
        return scheme, owner, server, maintainer

    @pytest.mark.parametrize("codec", [CODEC_JSON, CODEC_BINARY])
    def test_insert_refreshes_warm_ranking(self, world, codec):
        scheme, owner, server, maintainer = self._deploy(world, codec)
        request = search_bytes(scheme, owner.key, "alpha", k=None)
        before = SearchResponse.from_bytes(server.handle(request))
        server.handle(request)  # cache is warm now
        maintainer.insert_document(
            Document(
                doc_id="fresh-doc",
                title="fresh",
                text="alpha " * 30,
            )
        )
        after_bytes = server.handle(request)
        after = SearchResponse.from_bytes(after_bytes)
        assert "fresh-doc" in {m[0] for m in after.matches}
        assert len(after.matches) == len(before.matches) + 1
        # The warm answer must equal a cold server's (no stale ranking).
        _, _, outsourcing = world
        cold = make_server(outsourcing, cached=False)
        assert after_bytes == cold.handle(request)

    @pytest.mark.parametrize("codec", [CODEC_JSON, CODEC_BINARY])
    def test_remove_refreshes_warm_ranking(self, world, codec):
        scheme, owner, server, maintainer = self._deploy(world, codec)
        request = search_bytes(scheme, owner.key, "alpha", k=None)
        before = SearchResponse.from_bytes(server.handle(request))
        server.handle(request)  # cache is warm now
        victim = before.matches[0][0]
        maintainer.remove_document(victim)
        after = SearchResponse.from_bytes(server.handle(request))
        assert victim not in {m[0] for m in after.matches}
        assert len(after.matches) == len(before.matches) - 1

    def test_warm_equals_cold_after_update(self, world):
        """A warm post-update query is byte-identical to a cold one."""
        scheme, owner, server, maintainer = self._deploy(world, CODEC_JSON)
        request = search_bytes(scheme, owner.key, "alpha", k=4)
        server.handle(request)
        maintainer.insert_document(
            Document(doc_id="d-new", title="t", text="alpha " * 20)
        )
        _, _, outsourcing = world
        cold = make_server(outsourcing, cached=False)
        assert server.handle(request) == cold.handle(request)


class TestClusterBatchEquivalence:
    @pytest.mark.parametrize("codec", [CODEC_JSON, CODEC_BINARY])
    @pytest.mark.parametrize("cached", [True, False])
    def test_batch_matches_single_dispatch(self, world, codec, cached):
        scheme, owner, outsourcing = world
        requests = [
            search_bytes(scheme, owner.key, keyword, k=k, codec=codec)
            for keyword in VOCAB * 2
            for k in (1, 3)
        ]
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=3,
            cache_searches=cached,
        ) as cluster:
            batched = cluster.handle_many(requests)
            single = [cluster.handle(request) for request in requests]
        reference = make_server(outsourcing, cached=False)
        assert batched == single
        assert batched == [
            reference.handle(request) for request in requests
        ]

    def test_resilient_batch_matches_single(self, world):
        scheme, owner, outsourcing = world
        requests = [
            search_bytes(scheme, owner.key, keyword) for keyword in VOCAB
        ]
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=2,
            cache_searches=True,
        ) as cluster:
            result = cluster.handle_many_resilient(requests)
            assert result.complete
            assert list(result.responses) == [
                cluster.handle(request) for request in requests
            ]

    def test_empty_batch(self, world):
        _, _, outsourcing = world
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=2,
        ) as cluster:
            assert cluster.handle_many([]) == []


class TestCodecMirroring:
    def test_response_codec_follows_request(self, world):
        scheme, owner, outsourcing = world
        server = make_server(outsourcing, cached=True)
        for codec in (CODEC_JSON, CODEC_BINARY):
            response = server.handle(
                search_bytes(scheme, owner.key, "alpha", codec=codec)
            )
            assert detect_codec(response) == codec

    def test_codecs_carry_identical_content(self, world):
        scheme, owner, outsourcing = world
        server = make_server(outsourcing, cached=False)
        json_response = SearchResponse.from_bytes(
            server.handle(search_bytes(scheme, owner.key, "beta"))
        )
        binary_response = SearchResponse.from_bytes(
            server.handle(
                search_bytes(scheme, owner.key, "beta", codec=CODEC_BINARY)
            )
        )
        assert json_response == binary_response

    def test_user_binary_codec_end_to_end(self, world):
        scheme, owner, outsourcing = world
        server = make_server(outsourcing, cached=True)
        json_user = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(server.handle),
            owner.analyzer,
        )
        binary_user = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(server.handle, codec=CODEC_BINARY),
            owner.analyzer,
            codec=CODEC_BINARY,
        )
        assert [
            (hit.file_id, hit.text)
            for hit in binary_user.search_ranked_topk("alpha", 4)
        ] == [
            (hit.file_id, hit.text)
            for hit in json_user.search_ranked_topk("alpha", 4)
        ]


class TestBoundedServerLog:
    def _observation(self, tag: bytes) -> SearchObservation:
        return SearchObservation(
            address=tag,
            matched_file_ids=("d1",),
            score_fields=(b"\x01",),
            returned_file_ids=("d1",),
        )

    def test_default_is_unbounded(self):
        log = ServerLog()
        for i in range(500):
            log.record(self._observation(b"a%d" % (i % 3)))
        assert len(log.observations) == 500

    def test_bounded_mode_caps_memory(self):
        log = ServerLog(max_observations=16)
        for i in range(100):
            log.record(self._observation(b"a%d" % (i % 3)))
        assert len(log.observations) == 16

    def test_bounded_pattern_counts_full_history(self):
        log = ServerLog(max_observations=4)
        for _ in range(10):
            log.record(self._observation(b"hot"))
        log.record(self._observation(b"rare"))
        pattern = log.search_pattern()
        assert pattern[b"hot"] == 10
        assert pattern[b"rare"] == 1

    def test_direct_append_still_counted_when_unbounded(self):
        # The leakage-analysis idiom: tests append to .observations
        # directly, bypassing record().
        log = ServerLog()
        log.observations.append(self._observation(b"x"))
        log.observations.append(self._observation(b"x"))
        assert log.search_pattern() == {b"x": 2}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ParameterError):
            ServerLog(max_observations=0)

    def test_server_log_capacity_parameter(self, world):
        scheme, owner, outsourcing = world
        server = make_server(outsourcing, cached=False, log_capacity=2)
        for keyword in ("alpha", "beta", "gamma"):
            server.handle(search_bytes(scheme, owner.key, keyword))
        assert len(server.log.observations) == 2
        assert len(server.log.search_pattern()) == 3

    def test_cluster_forwards_log_capacity(self, world):
        scheme, owner, outsourcing = world
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=2,
            log_capacity=1,
        ) as cluster:
            for keyword in VOCAB:
                cluster.handle(search_bytes(scheme, owner.key, keyword))
            assert all(
                len(log.observations) <= 1 for log in cluster.logs
            )
            assert sum(cluster.search_pattern().values()) == len(VOCAB)
