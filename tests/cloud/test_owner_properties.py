"""Unit tests for DataOwner's retained state (quantizer, file key)."""

import pytest

from repro.cloud.owner import DataOwner
from repro.core import BasicRankedSSE, EfficientRSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus


@pytest.fixture(scope="module")
def documents():
    return generate_corpus(8, seed=91, vocabulary_size=120)


class TestQuantizerRetention:
    def test_none_before_setup(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        assert owner.quantizer is None

    def test_retained_after_setup(self, documents):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        owner.setup(documents)
        assert owner.quantizer is not None
        assert owner.quantizer.levels == TEST_PARAMETERS.score_levels

    def test_basic_scheme_has_no_quantizer(self, documents):
        owner = DataOwner(BasicRankedSSE(TEST_PARAMETERS))
        owner.setup(documents)
        assert owner.quantizer is None

    def test_quantizer_matches_rebuild(self, documents):
        """The retained scale reproduces identical index levels."""
        scheme = EfficientRSSE(TEST_PARAMETERS)
        owner = DataOwner(scheme)
        owner.setup(documents)
        rebuilt = scheme.build_index(
            owner.key, owner.plain_index, quantizer=owner.quantizer
        )
        assert rebuilt.quantizer is owner.quantizer


class TestFileKey:
    def test_matches_issued_credentials(self, documents):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        owner.setup(documents)
        assert owner.authorize_user().file_key == owner.file_key

    def test_distinct_owners_distinct_keys(self):
        a = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        b = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        assert a.file_key != b.file_key
