"""End-to-end fault tolerance of the sharded serving path.

The ISSUE acceptance scenario: a 4-shard cluster under a fault plan
injecting call drops plus one crashed shard must (a) never surface an
unhandled exception — searches degrade to :class:`PartialResult` —
and (b) recover once the crash window passes: the breaker closes and
responses return to byte-equivalence with the fault-free run.

The whole suite is parameterized by ``--fault-seed`` and
``--fault-drop-rate`` (see ``tests/conftest.py``); the CI fault-matrix
job sweeps a grid of both.  Searches are driven *sequentially* — the
thread pool races per-shard call-index assignment across shards, so
determinism claims are only well-defined for a serial request order.
"""

import random

import pytest

from repro.cloud.cluster import ClusterServer, PartialResult
from repro.cloud.faults import FaultPlan, FaultyChannel
from repro.cloud.network import Channel
from repro.cloud.owner import DataOwner
from repro.cloud.protocol import SearchRequest, peek_kind
from repro.cloud.retry import BreakerConfig, RetryPolicy
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.cloud.updates import RemoteIndexMaintainer
from repro.cloud.user import DataUser
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus
from repro.errors import ProtocolError, TransportError
from repro.ir.inverted_index import InvertedIndex

VOCAB = [f"term{i:02d}" for i in range(32)]
TOKEN = b"owner-update-token"

#: The shard the acceptance scenario crashes, and for how many of its
#: own call indexes.  Retried attempts and half-open probes consume
#: indexes, which is how the window eventually passes.
CRASHED_SHARD = 1
CRASH_WINDOW = (0, 40)


@pytest.fixture(scope="module")
def deployment():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    rng = random.Random(42)
    for doc in range(20):
        index.add_document(
            f"doc{doc}", [rng.choice(VOCAB) for _ in range(40)]
        )
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for doc in range(20):
        blobs.put(f"doc{doc}", b"cipher-" + str(doc).encode())
    return scheme, key, built, blobs


def search_bytes(scheme, key, keyword, k=5):
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(), top_k=k
    ).to_bytes()


def make_cluster(deployment, **kwargs):
    _, _, built, blobs = deployment
    return ClusterServer(
        built.secure_index, blobs, can_rank=True, num_shards=4, **kwargs
    )


def acceptance_plan(fault_seed, fault_drop_rate):
    return FaultPlan(
        seed=fault_seed,
        drop_rate=fault_drop_rate,
        crash_windows={CRASHED_SHARD: (CRASH_WINDOW,)},
    )


def acceptance_policy(fault_seed):
    # max_attempts=8: at the matrix's highest drop rate (0.25) a
    # healthy-shard search fails all attempts with probability
    # 0.25^8 ~ 1.5e-5 — and each (seed, rate) cell is deterministic,
    # so cells are verified to pass before entering the matrix.
    return RetryPolicy(
        max_attempts=8, base_backoff_s=0.0, jitter_seed=fault_seed
    )


@pytest.fixture(scope="module")
def baseline(deployment):
    """Fault-free responses, keyword -> bytes."""
    scheme, key, _, _ = deployment
    with make_cluster(deployment) as cluster:
        return {
            keyword: cluster.handle(search_bytes(scheme, key, keyword))
            for keyword in VOCAB
        }


class TestGracefulDegradation:
    def test_partial_result_never_exception(
        self, deployment, baseline, fault_seed, fault_drop_rate
    ):
        """The headline acceptance criterion, end to end."""
        scheme, key, _, _ = deployment
        with make_cluster(
            deployment,
            fault_plan=acceptance_plan(fault_seed, fault_drop_rate),
            retry_policy=acceptance_policy(fault_seed),
            retry_sleep=lambda _s: None,
        ) as cluster:
            requests = {
                keyword: search_bytes(scheme, key, keyword)
                for keyword in VOCAB
            }
            degraded = 0
            for keyword, request in requests.items():
                result = cluster.handle_resilient(request)
                assert isinstance(result, PartialResult)
                shard = cluster.shard_id_for(request)
                if result.complete:
                    # A served search is byte-identical to fault-free:
                    # drops are retried and corruption is re-fetched,
                    # never silently returned.
                    assert result.responses == (baseline[keyword],)
                else:
                    degraded += 1
                    assert result.missing_shards == (CRASHED_SHARD,)
                    assert shard == CRASHED_SHARD
                    assert result.responses == (None,)
                    assert result.failures[0][1] == CRASHED_SHARD
            # The crashed shard owns some of the vocabulary, and its
            # window (40 indexes) outlasts the first pass's attempts.
            assert degraded > 0

    def test_breaker_recovers_after_crash_window(
        self, deployment, baseline, fault_seed, fault_drop_rate
    ):
        """After the window passes, probes close the breaker and
        results return to byte-equivalence with the fault-free run."""
        scheme, key, _, _ = deployment
        with make_cluster(deployment) as probe:
            keyword = next(
                word
                for word in VOCAB
                if probe.shard_id_for(search_bytes(scheme, key, word))
                == CRASHED_SHARD
            )
        request = search_bytes(scheme, key, keyword)
        with make_cluster(
            deployment,
            fault_plan=acceptance_plan(fault_seed, fault_drop_rate),
            retry_policy=acceptance_policy(fault_seed),
            breaker=BreakerConfig(failure_threshold=3, probe_interval=4),
            retry_sleep=lambda _s: None,
        ) as cluster:
            recovered_at = None
            for round_number in range(80):
                result = cluster.handle_resilient(request)
                if result.complete and result.responses == (
                    baseline[keyword],
                ):
                    recovered_at = round_number
                    break
            assert recovered_at is not None, "shard never recovered"
            health = cluster.shard_health[CRASHED_SHARD]
            assert health.state == "closed"
            assert health.times_opened >= 1
            assert health.probes >= 1
            assert health.suppressed_calls > 0
            # Recovered for good: subsequent searches stay complete.
            for _ in range(5):
                follow_up = cluster.handle_resilient(request)
                assert follow_up.responses == (baseline[keyword],)
            stats = cluster.fault_stats[CRASHED_SHARD]
            assert stats.crash_rejections > 0

    def test_healthy_cluster_with_resilience_is_byte_identical(
        self, deployment, baseline
    ):
        """Retry + breaker layers are invisible without faults."""
        scheme, key, _, _ = deployment
        with make_cluster(
            deployment,
            retry_policy=RetryPolicy(max_attempts=4, base_backoff_s=0.0),
            breaker=BreakerConfig(),
            retry_sleep=lambda _s: None,
        ) as cluster:
            for keyword in VOCAB:
                request = search_bytes(scheme, key, keyword)
                assert cluster.handle(request) == baseline[keyword]
            for health in cluster.shard_health:
                assert health.state == "closed"
                assert health.times_opened == 0
            for channel in cluster.retrying_channels:
                assert channel.retry_stats.retries == 0

    def test_batch_degrades_per_request(
        self, deployment, fault_seed, fault_drop_rate
    ):
        scheme, key, _, _ = deployment
        with make_cluster(
            deployment,
            fault_plan=acceptance_plan(fault_seed, fault_drop_rate),
            retry_policy=acceptance_policy(fault_seed),
            retry_sleep=lambda _s: None,
        ) as cluster:
            requests = [
                search_bytes(scheme, key, keyword) for keyword in VOCAB
            ]
            result = cluster.handle_many_resilient(requests)
            assert isinstance(result, PartialResult)
            assert len(result.responses) == len(requests)
            assert result.served >= 1
            assert set(result.missing_shards) <= {CRASHED_SHARD}
            for position, shard, error in result.failures:
                assert result.responses[position] is None
                assert shard == CRASHED_SHARD
                assert error in ("RetryExhaustedError", "ShardDownError")


class TestRetryDeterminism:
    """Satellite 3: same fault seed => identical bytes AND schedules."""

    def run_sequence(self, deployment, fault_seed, fault_drop_rate):
        scheme, key, _, _ = deployment
        with make_cluster(
            deployment,
            fault_plan=acceptance_plan(fault_seed, fault_drop_rate),
            retry_policy=acceptance_policy(fault_seed),
            retry_sleep=lambda _s: None,
        ) as cluster:
            responses = [
                cluster.handle_resilient(
                    search_bytes(scheme, key, keyword)
                ).responses
                for keyword in VOCAB
            ]
            traces = tuple(
                channel.trace for channel in cluster.retrying_channels
            )
            fault_stats = cluster.fault_stats
            return responses, traces, fault_stats

    def test_same_seed_identical_bytes_and_retry_schedules(
        self, deployment, fault_seed, fault_drop_rate
    ):
        first = self.run_sequence(deployment, fault_seed, fault_drop_rate)
        second = self.run_sequence(deployment, fault_seed, fault_drop_rate)
        assert first[0] == second[0]  # byte-identical (degraded) results
        assert first[1] == second[1]  # identical per-attempt schedules
        assert first[2] == second[2]  # identical injected faults

    def test_different_seed_different_schedule(
        self, deployment, fault_seed
    ):
        # High drop rate so schedules visibly diverge in one pass.
        first = self.run_sequence(deployment, fault_seed, 0.4)
        second = self.run_sequence(deployment, fault_seed + 1, 0.4)
        assert first[1] != second[1]


class TestOwnerUpdateQueueing:
    """Updates against a crashed shard queue, then replay in order."""

    @pytest.fixture()
    def world(self):
        documents = generate_corpus(20, seed=81, vocabulary_size=200)
        scheme = EfficientRSSE(TEST_PARAMETERS)
        owner = DataOwner(scheme)
        outsourcing = owner.setup(documents[:15])
        server = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            update_token=TOKEN,
        )
        return documents, scheme, owner, server

    def test_updates_queue_and_replay_after_recovery(self, world):
        documents, scheme, owner, server = world
        # A crash window long enough to swallow the whole insert
        # (1 blob + one append per keyword, no retries).
        plan = FaultPlan(crash_windows={0: ((0, 256),)})
        faulty = FaultyChannel(
            Channel(server.handle), plan.schedule_for(0)
        )
        maintainer = RemoteIndexMaintainer(
            owner,
            faulty,
            TOKEN,
            retry_policy=RetryPolicy(max_attempts=1, base_backoff_s=0.0),
            queue_on_failure=True,
        )
        new_doc = documents[15]
        report = maintainer.insert_document(new_doc)
        assert report.lists_touched > 0
        queued = maintainer.pending_updates
        assert queued == report.lists_touched + 1  # appends + blob
        assert queued < 256  # window really did cover every call
        assert faulty.calls_made == queued  # nothing got through

        # New mutations are refused while the queue is non-empty.
        with pytest.raises(ProtocolError):
            maintainer.insert_document(documents[16])
        with pytest.raises(ProtocolError):
            maintainer.remove_document(new_doc.doc_id)

        # Drive flush attempts until the crash window passes; each
        # failed attempt consumes one fault index, so this terminates.
        replayed = 0
        for _ in range(300):
            try:
                replayed += maintainer.flush_pending()
                break
            except TransportError:
                continue
        assert replayed == queued
        assert maintainer.pending_updates == 0

        # The replayed document is fully searchable and up to date.
        user = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(server.handle),
            owner.analyzer,
        )
        hits = user.search_ranked_topk("network", 100)
        assert new_doc.doc_id in {hit.file_id for hit in hits}

    def test_queue_preserves_fifo_order(self, world):
        documents, _, owner, server = world
        seen = []
        real_handle = server.handle

        def recording_handle(request: bytes) -> bytes:
            seen.append(request)
            return real_handle(request)

        plan = FaultPlan(crash_windows={0: ((0, 256),)})
        faulty = FaultyChannel(
            Channel(recording_handle), plan.schedule_for(0)
        )
        maintainer = RemoteIndexMaintainer(
            owner,
            faulty,
            TOKEN,
            retry_policy=RetryPolicy(max_attempts=1, base_backoff_s=0.0),
            queue_on_failure=True,
        )
        maintainer.insert_document(documents[15])
        queued = maintainer.pending_updates
        for _ in range(300):
            try:
                maintainer.flush_pending()
                break
            except TransportError:
                continue
        # Everything the server finally saw is the queue, in order,
        # with the blob upload first (the insert protocol's invariant).
        assert len(seen) == queued
        assert peek_kind(seen[0]) == "put-blob"
