"""Unit + property tests for deterministic fault injection.

Covers :class:`FaultPlan` validation, the determinism of
:class:`FaultSchedule` decision streams (the property the whole fault
suite rests on), :class:`FaultyChannel` injection semantics, and the
headline recovery property: for *any* fault plan whose crash window
ends, a retried call eventually returns bytes identical to the
fault-free response.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.faults import (
    CORRUPTION_PREFIX,
    FaultPlan,
    FaultyChannel,
    corrupt_response,
)
from repro.cloud.network import Channel
from repro.cloud.retry import RetryingChannel, RetryPolicy
from repro.errors import (
    CallDroppedError,
    ParameterError,
    RetryExhaustedError,
    ShardDownError,
)


def echo_handler(request: bytes) -> bytes:
    """A framed, request-dependent response (passes peek_kind)."""
    return b'{"kind": "echo", "payload": "' + request.hex().encode() + b'"}'


class TestFaultPlanValidation:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ParameterError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ParameterError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(ParameterError):
            FaultPlan(delay_rate=2.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ParameterError):
            FaultPlan(delay_s=-0.01)

    def test_rejects_malformed_crash_windows(self):
        with pytest.raises(ParameterError):
            FaultPlan(crash_windows={0: ((-1, 5),)})
        with pytest.raises(ParameterError):
            FaultPlan(crash_windows={0: ((5, 5),)})
        with pytest.raises(ParameterError):
            FaultPlan(crash_windows={0: ((7, 3),)})

    def test_crash_windows_normalized_to_tuples(self):
        plan = FaultPlan(crash_windows={3: [[2, 9]]})
        assert plan.crash_windows == {3: ((2, 9),)}


class TestFaultSchedule:
    def test_same_plan_same_decisions(self):
        plan = FaultPlan(seed=7, drop_rate=0.3, corrupt_rate=0.2,
                         delay_rate=0.2, delay_s=0.5)
        first = plan.schedule_for(2)
        second = FaultPlan(seed=7, drop_rate=0.3, corrupt_rate=0.2,
                           delay_rate=0.2, delay_s=0.5).schedule_for(2)
        for index in range(300):
            assert first.decision(index) == second.decision(index)

    def test_different_seeds_differ(self):
        base = FaultPlan(seed=1, drop_rate=0.3).schedule_for(0)
        other = FaultPlan(seed=2, drop_rate=0.3).schedule_for(0)
        assert [base.decision(i) for i in range(200)] != [
            other.decision(i) for i in range(200)
        ]

    def test_different_targets_differ(self):
        plan = FaultPlan(seed=5, drop_rate=0.3)
        first = plan.schedule_for(0)
        second = plan.schedule_for(1)
        assert [first.decision(i) for i in range(200)] != [
            second.decision(i) for i in range(200)
        ]

    def test_crash_takes_precedence(self):
        plan = FaultPlan(seed=0, drop_rate=1.0,
                         crash_windows={0: ((3, 6),)})
        schedule = plan.schedule_for(0)
        assert schedule.decision(3).kind == "crash"
        assert schedule.decision(5).kind == "crash"
        assert schedule.decision(6).kind == "drop"
        assert schedule.in_crash_window(4)
        assert not schedule.in_crash_window(6)

    def test_drop_takes_precedence_over_corrupt(self):
        plan = FaultPlan(seed=0, drop_rate=1.0, corrupt_rate=1.0)
        assert plan.schedule_for(0).decision(0).kind == "drop"

    def test_delay_decision_carries_latency(self):
        plan = FaultPlan(seed=0, delay_rate=1.0, delay_s=0.75)
        decision = plan.schedule_for(0).decision(0)
        assert decision.kind == "delay"
        assert decision.delay_s == 0.75

    def test_empirical_rate_tracks_plan(self):
        plan = FaultPlan(seed=11, drop_rate=0.25)
        schedule = plan.schedule_for(0)
        drops = sum(
            schedule.decision(i).kind == "drop" for i in range(2000)
        )
        assert 0.20 < drops / 2000 < 0.30


class TestCorruptResponse:
    def test_prefixes_and_breaks_framing(self):
        garbled = corrupt_response(b'{"kind": "ack"}')
        assert garbled.startswith(CORRUPTION_PREFIX)
        assert garbled != b'{"kind": "ack"}'


class TestFaultyChannel:
    def make(self, plan, target=0, handler=echo_handler, **kwargs):
        inner = Channel(handler)
        return inner, FaultyChannel(
            inner, plan.schedule_for(target), **kwargs
        )

    def test_forwards_when_fault_free(self):
        inner, channel = self.make(FaultPlan())
        assert channel.call(b"ping") == echo_handler(b"ping")
        assert channel.fault_stats.calls == 1
        assert channel.fault_stats.faults == 0
        assert channel.calls_made == 1

    def test_drop_raises_before_server_sees_call(self):
        inner, channel = self.make(FaultPlan(drop_rate=1.0))
        with pytest.raises(CallDroppedError):
            channel.call(b"ping")
        assert inner.stats.round_trips == 0  # server never observed it
        assert channel.fault_stats.drops == 1

    def test_crash_window_rejects_then_recovers(self):
        inner, channel = self.make(
            FaultPlan(crash_windows={0: ((0, 2),)})
        )
        for _ in range(2):
            with pytest.raises(ShardDownError):
                channel.call(b"ping")
        assert inner.stats.round_trips == 0
        assert channel.call(b"ping") == echo_handler(b"ping")
        assert channel.fault_stats.crash_rejections == 2

    def test_corruption_happens_after_server_executed(self):
        inner, channel = self.make(FaultPlan(corrupt_rate=1.0))
        response = channel.call(b"ping")
        assert response == corrupt_response(echo_handler(b"ping"))
        # The server DID run the request — this is why the update
        # handler must be idempotent under retries.
        assert inner.stats.round_trips == 1
        assert channel.fault_stats.corruptions == 1

    def test_delay_is_modeled_not_slept_by_default(self):
        slept = []
        _, channel = self.make(
            FaultPlan(delay_rate=1.0, delay_s=0.5),
            sleep=slept.append,
        )
        channel.call(b"ping")
        assert channel.last_injected_delay_s == 0.5
        assert slept == []
        assert channel.fault_stats.delays == 1
        assert channel.fault_stats.total_delay_s == 0.5

    def test_delay_slept_when_plan_asks(self):
        slept = []
        _, channel = self.make(
            FaultPlan(delay_rate=1.0, delay_s=0.25, sleep_delays=True),
            sleep=slept.append,
        )
        channel.call(b"ping")
        assert slept == [0.25]

    def test_delay_flag_resets_on_fast_call(self):
        # Index 0 delayed, index 1 not (rates below 1 with this seed).
        plan = FaultPlan(seed=11, delay_rate=1.0, delay_s=0.5)
        _, channel = self.make(plan)
        channel.call(b"a")
        assert channel.last_injected_delay_s == 0.5
        fault_free = FaultPlan()
        _, clean = self.make(fault_free)
        clean.last_injected_delay_s = 0.5  # stale value
        clean.call(b"b")
        assert clean.last_injected_delay_s == 0.0

    def test_stats_passthrough(self):
        inner, channel = self.make(FaultPlan())
        channel.call(b"abcd")
        assert channel.stats is inner.stats
        assert channel.stats.bytes_to_server == 4

    def test_same_plan_same_injected_faults(self):
        plan = FaultPlan(seed=3, drop_rate=0.4, corrupt_rate=0.3)
        _, first = self.make(plan)
        _, second = self.make(plan)
        for channel in (first, second):
            for _ in range(100):
                try:
                    channel.call(b"x")
                except CallDroppedError:
                    pass
        assert first.fault_stats == second.fault_stats
        assert first.fault_stats.drops > 0
        assert first.fault_stats.corruptions > 0


class TestRecoveryProperty:
    """Satellite 6: any plan with recovery converges to fault-free bytes."""

    @settings(derandomize=True, max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        drop_rate=st.floats(min_value=0.0, max_value=0.5),
        corrupt_rate=st.floats(min_value=0.0, max_value=0.5),
        window_end=st.integers(min_value=0, max_value=25),
    )
    def test_retried_call_recovers_to_fault_free_bytes(
        self, seed, drop_rate, corrupt_rate, window_end
    ):
        request = b"query-under-test"
        fault_free = echo_handler(request)
        windows = {0: ((0, window_end),)} if window_end > 0 else {}
        plan = FaultPlan(
            seed=seed,
            drop_rate=drop_rate,
            corrupt_rate=corrupt_rate,
            crash_windows=windows,
        )
        faulty = FaultyChannel(Channel(echo_handler), plan.schedule_for(0))
        retrying = RetryingChannel(
            faulty,
            RetryPolicy(max_attempts=10, base_backoff_s=0.0,
                        jitter_seed=seed),
            sleep=lambda _s: None,
        )
        response = None
        for _ in range(12):  # >= 120 attempts; window is at most 25
            try:
                response = retrying.call(request)
                break
            except RetryExhaustedError:
                continue
        assert response == fault_free
        # And the recovered channel keeps answering correctly.
        assert retrying.call(request) == fault_free
