"""TCP loopback tests for the hot-query fast lane.

Proves the :class:`~repro.cloud.netserve.NetServer` front-end result
cache over real sockets:

* responses are byte-identical with the cache on and off, in both
  codecs, for single- and multi-keyword queries, through an
  interleaved insert/remove cycle (every update frame is fanned to the
  cached *and* the uncached deployment, since each worker set owns a
  private copy of the index);
* a pipelined burst of identical cold queries collapses to one worker
  round trip behind the single-flight leader, proven by the cache's
  own counters (``misses`` counts actual worker dispatches);
* front-end cache hits still record leakage events, so the curious
  server's log rebuilt from the exported event stream
  (:func:`repro.analysis.leakage.server_log_from_events`) keeps exact
  search- and access-pattern counts — one observation per answered
  query, hit or miss;
* the admin health document reports the cache's counters.
"""

import json
import random
from collections import Counter

import pytest

from repro.analysis.leakage import server_log_from_events
from repro.cloud.netserve import NetServer, NetworkChannel
from repro.cloud.network import Channel
from repro.cloud.owner import DataOwner
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    MODE_CONJUNCTIVE,
    MODE_DISJUNCTIVE,
    MultiSearchRequest,
    SearchRequest,
)
from repro.cloud.updates import RemoteIndexMaintainer
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus.loader import Document
from repro.obs import FakeClock, Obs, load_jsonl, validate_records

VOCAB = [f"term{i:02d}" for i in range(16)]
NUM_SHARDS = 4
TOKEN = b"fast-lane-token"
CACHE_BYTES = 4 << 20


def build_world(seed: int = 77, docs: int = 18):
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    rng = random.Random(seed)
    documents = [
        Document(
            doc_id=f"doc{i:02d}",
            title=f"doc {i}",
            text=" ".join(rng.choice(VOCAB) for _ in range(40)),
        )
        for i in range(docs)
    ]
    outsourcing = owner.setup(documents)
    return scheme, owner, outsourcing


@pytest.fixture(scope="module")
def world():
    """One shared deployment for the read-only tests."""
    return build_world()


def search_bytes(world, keyword, codec=CODEC_BINARY, top_k=5):
    scheme, owner, _ = world
    term = owner.analyzer.analyze_query(keyword)
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(owner.key, term).serialize(),
        top_k=top_k,
    ).to_bytes(codec)


def multi_bytes(world, keywords, mode, codec=CODEC_BINARY):
    scheme, owner, _ = world
    return MultiSearchRequest(
        trapdoors=tuple(
            scheme.trapdoor(
                owner.key, owner.analyzer.analyze_query(keyword)
            ).serialize()
            for keyword in keywords
        ),
        mode=mode,
        top_k=5,
    ).to_bytes(codec)


def make_server(world, **kwargs) -> NetServer:
    _, _, outsourcing = world
    return NetServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        num_shards=NUM_SHARDS,
        **kwargs,
    )


class TestByteIdentityOverTCP:
    @pytest.mark.parametrize("codec", (CODEC_JSON, CODEC_BINARY))
    def test_interleaved_updates_byte_identical(self, codec):
        world = build_world(seed=31)
        _, owner, _ = world
        frames = [
            search_bytes(world, keyword, codec) for keyword in VOCAB[:8]
        ] + [
            multi_bytes(world, VOCAB[:3], MODE_CONJUNCTIVE, codec),
            multi_bytes(world, VOCAB[3:6], MODE_DISJUNCTIVE, codec),
        ]
        with make_server(world, update_token=TOKEN) as plain, make_server(
            world, update_token=TOKEN, result_cache_bytes=CACHE_BYTES
        ) as cached, NetworkChannel(
            plain.host, plain.port
        ) as plain_channel, NetworkChannel(
            cached.host, cached.port
        ) as cached_channel:

            def fan_out(frame: bytes) -> bytes:
                response = cached_channel.call(frame)
                plain_channel.call(frame)
                return response

            maintainer = RemoteIndexMaintainer(
                owner, Channel(fan_out), TOKEN, codec=codec
            )

            def check() -> list[bytes]:
                snapshot = []
                for frame in frames:
                    expected = plain_channel.call(frame)
                    assert cached_channel.call(frame) == expected
                    assert cached_channel.call(frame) == expected  # hit
                    snapshot.append(expected)
                return snapshot

            before = check()
            stats = cached.result_cache.stats()
            assert stats["entries"] == len(frames)  # multi cached too
            assert stats["hits"] > 0
            maintainer.insert_document(
                Document(
                    doc_id="doc-new",
                    title="new",
                    text=f"{VOCAB[0]} {VOCAB[0]} {VOCAB[1]}",
                )
            )
            after_insert = check()
            assert after_insert != before
            assert cached.result_cache.stats()["invalidations"] > 0
            maintainer.remove_document("doc-new")
            assert check() == before


class TestSingleFlightCoalescing:
    def test_identical_cold_burst_dispatches_once(self, world):
        frame = search_bytes(world, VOCAB[0])
        with make_server(
            world,
            result_cache_bytes=CACHE_BYTES,
            worker_delay_s=0.05,
        ) as server, NetworkChannel(server.host, server.port) as channel:
            responses = channel.call_many([frame] * 16)
            assert len(set(responses)) == 1
            stats = server.result_cache.stats()
            # "misses" counts actual worker dispatches through the
            # cached path — the burst must collapse behind one leader.
            assert stats["misses"] <= 2
            assert stats["coalesced"] >= 14
            assert channel.call(frame) == responses[0]  # now a plain hit
            assert server.result_cache.stats()["hits"] >= 1


class TestLeakageExactness:
    WORKLOAD = [VOCAB[0]] * 4 + [VOCAB[1]] * 3 + [VOCAB[2]]

    def dump_for(self, world, **kwargs):
        obs = Obs.enabled(clock=FakeClock())
        with make_server(
            world, obs=obs, deterministic_obs=True, **kwargs
        ) as server, NetworkChannel(server.host, server.port) as channel:
            for keyword in self.WORKLOAD:
                channel.call(search_bytes(world, keyword))
            artifact = server.export_cluster_jsonl()
        assert validate_records(artifact) == []
        return load_jsonl(artifact)

    def test_cache_hits_keep_leakage_counts_exact(self, world):
        cached = self.dump_for(world, result_cache_bytes=CACHE_BYTES)
        plain = self.dump_for(world)
        # One leakage event per answered query, hit or miss ...
        assert len(cached.leakage) == len(self.WORKLOAD)
        assert len(plain.leakage) == len(self.WORKLOAD)
        # ... and the search-pattern multiplicity is identical to the
        # cache-off deployment: 4/3/1 over the three distinct keywords.
        cached_counts = Counter(
            event.trapdoor for event in cached.leakage
        )
        plain_counts = Counter(event.trapdoor for event in plain.leakage)
        assert cached_counts == plain_counts
        assert sorted(cached_counts.values()) == [1, 3, 4]

    def test_replayed_log_matches_uncached_access_pattern(self, world):
        cached = self.dump_for(world, result_cache_bytes=CACHE_BYTES)
        plain = self.dump_for(world)
        cached_log = server_log_from_events(cached.leakage)
        plain_log = server_log_from_events(plain.leakage)
        assert len(cached_log.observations) == len(self.WORKLOAD)

        def pattern(log):
            return Counter(
                (
                    observation.address,
                    observation.matched_file_ids,
                    observation.returned_file_ids,
                )
                for observation in log.observations
            )

        assert pattern(cached_log) == pattern(plain_log)


class TestAdminHealth:
    def test_health_document_reports_cache_counters(self, world):
        obs = Obs.enabled(clock=FakeClock())
        frame = search_bytes(world, VOCAB[0])
        with make_server(
            world, obs=obs, result_cache_bytes=CACHE_BYTES
        ) as server, NetworkChannel(server.host, server.port) as channel:
            channel.call(frame)
            channel.call(frame)
            health = json.loads(channel.admin("health").decode("utf-8"))
        cache = health["result_cache"]
        assert cache["enabled"] is True
        assert cache["hits"] == 1
        assert cache["misses"] == 1
        assert cache["entries"] == 1
        assert cache["resident_bytes"] > 0

    def test_health_reports_disabled_without_cache(self, world):
        obs = Obs.enabled(clock=FakeClock())
        with make_server(world, obs=obs) as server, NetworkChannel(
            server.host, server.port
        ) as channel:
            health = json.loads(channel.admin("health").decode("utf-8"))
        assert health["result_cache"]["enabled"] is False
