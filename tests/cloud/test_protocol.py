"""Unit tests for wire messages."""

import pytest

from repro.cloud.protocol import (
    FileRequest,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
)
from repro.errors import ProtocolError


class TestSearchRequest:
    def test_roundtrip_minimal(self):
        request = SearchRequest(trapdoor_bytes=b"\x01\x02")
        assert SearchRequest.from_bytes(request.to_bytes()) == request

    def test_roundtrip_with_topk(self):
        request = SearchRequest(trapdoor_bytes=b"\xff", top_k=10)
        parsed = SearchRequest.from_bytes(request.to_bytes())
        assert parsed.top_k == 10

    def test_roundtrip_entries_only(self):
        request = SearchRequest(trapdoor_bytes=b"\x00", entries_only=True)
        assert SearchRequest.from_bytes(request.to_bytes()).entries_only

    def test_rejects_wrong_kind(self):
        other = FileRequest(file_ids=("a",)).to_bytes()
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(other)

    def test_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(b"\xff\x00")


class TestSearchResponse:
    def test_roundtrip(self):
        response = SearchResponse(
            matches=(("d1", b"\x01"), ("d2", b"\x02")),
            files=(("d1", b"blob"),),
        )
        assert SearchResponse.from_bytes(response.to_bytes()) == response

    def test_empty(self):
        response = SearchResponse()
        parsed = SearchResponse.from_bytes(response.to_bytes())
        assert parsed.matches == () and parsed.files == ()

    def test_size_grows_with_payload(self):
        small = SearchResponse(files=(("d", b"x"),)).to_bytes()
        large = SearchResponse(files=(("d", b"x" * 1000),)).to_bytes()
        assert len(large) > len(small) + 1500  # hex doubles the bytes


class TestFileRequest:
    def test_roundtrip(self):
        request = FileRequest(file_ids=("a", "b"))
        assert FileRequest.from_bytes(request.to_bytes()) == request

    def test_preserves_order(self):
        request = FileRequest(file_ids=("z", "a", "m"))
        assert FileRequest.from_bytes(request.to_bytes()).file_ids == (
            "z", "a", "m",
        )


class TestRankedFilesResponse:
    def test_roundtrip(self):
        response = RankedFilesResponse(files=(("d1", b"\x00\x01"),))
        assert RankedFilesResponse.from_bytes(response.to_bytes()) == response

    def test_rejects_cross_kind(self):
        with pytest.raises(ProtocolError):
            RankedFilesResponse.from_bytes(SearchResponse().to_bytes())
