"""Unit tests for the honest-but-curious cloud server."""

import pytest

from repro.cloud.protocol import FileRequest, SearchRequest, SearchResponse
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.core.params import TEST_PARAMETERS
from repro.core.rsse import EfficientRSSE
from repro.errors import ProtocolError
from repro.ir.inverted_index import InvertedIndex


@pytest.fixture(scope="module")
def deployment():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 5 + ["pad"] * 5)
    index.add_document("d2", ["net"] * 1 + ["pad"] * 9)
    index.add_document("d3", ["net"] * 3 + ["pad"] * 2)
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for file_id in ["d1", "d2", "d3"]:
        blobs.put(file_id, b"encrypted-" + file_id.encode())
    return scheme, key, built, blobs


def make_server(deployment, can_rank=True) -> CloudServer:
    _, _, built, blobs = deployment
    return CloudServer(built.secure_index, blobs, can_rank=can_rank)


class TestSearchHandling:
    def test_ranked_topk(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "net").serialize(), top_k=2
        )
        response = SearchResponse.from_bytes(server.handle(request.to_bytes()))
        assert len(response.matches) == 2
        assert len(response.files) == 2
        # d3 has the top score: (1+ln3)/5.
        assert response.matches[0][0] == "d3"
        assert response.files[0] == ("d3", b"encrypted-d3")

    def test_full_ranked_when_no_topk(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "net").serialize()
        )
        response = SearchResponse.from_bytes(server.handle(request.to_bytes()))
        assert [m[0] for m in response.matches] == ["d3", "d1", "d2"]

    def test_entries_only_returns_no_files(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "net").serialize(),
            entries_only=True,
        )
        response = SearchResponse.from_bytes(server.handle(request.to_bytes()))
        assert len(response.matches) == 3
        assert response.files == ()

    def test_unrankable_server_returns_index_order(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment, can_rank=False)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "net").serialize()
        )
        response = SearchResponse.from_bytes(server.handle(request.to_bytes()))
        assert {m[0] for m in response.matches} == {"d1", "d2", "d3"}

    def test_unknown_keyword_empty_response(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "absent").serialize()
        )
        response = SearchResponse.from_bytes(server.handle(request.to_bytes()))
        assert response.matches == () and response.files == ()


class TestFetchHandling:
    def test_fetch_returns_requested_order(self, deployment):
        server = make_server(deployment)
        request = FileRequest(file_ids=("d2", "d1"))
        raw = server.handle(request.to_bytes())
        from repro.cloud.protocol import RankedFilesResponse

        response = RankedFilesResponse.from_bytes(raw)
        assert response.files == (
            ("d2", b"encrypted-d2"), ("d1", b"encrypted-d1"),
        )

    def test_fetch_unknown_file_is_protocol_error(self, deployment):
        server = make_server(deployment)
        request = FileRequest(file_ids=("ghost",))
        with pytest.raises(ProtocolError):
            server.handle(request.to_bytes())


class TestCuriosity:
    def test_observations_record_access_pattern(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "net").serialize(), top_k=1
        )
        server.handle(request.to_bytes())
        observation = server.log.observations[0]
        assert set(observation.matched_file_ids) == {"d1", "d2", "d3"}
        assert observation.returned_file_ids == ("d3",)
        assert len(observation.score_fields) == 3

    def test_search_pattern_counts_repeats(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment)
        request = SearchRequest(
            trapdoor_bytes=scheme.trapdoor(key, "net").serialize()
        ).to_bytes()
        server.handle(request)
        server.handle(request)
        pattern = server.log.search_pattern()
        assert list(pattern.values()) == [2]

    def test_access_pattern_map(self, deployment):
        scheme, key, _, _ = deployment
        server = make_server(deployment)
        trapdoor = scheme.trapdoor(key, "net")
        server.handle(
            SearchRequest(trapdoor_bytes=trapdoor.serialize()).to_bytes()
        )
        pattern = server.log.access_pattern()
        assert set(pattern[trapdoor.address]) == {"d1", "d2", "d3"}


class TestMalformedRequests:
    def test_unknown_kind(self, deployment):
        server = make_server(deployment)
        with pytest.raises(ProtocolError):
            server.handle(b'{"kind": "nonsense"}')

    def test_non_json(self, deployment):
        server = make_server(deployment)
        with pytest.raises(ProtocolError):
            server.handle(b"\xff\x00\x01")
