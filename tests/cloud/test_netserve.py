"""Loopback integration tests for the real-socket serving layer.

Proves :class:`~repro.cloud.netserve.NetServer` (asyncio front end +
one shard worker *process* per shard) and
:class:`~repro.cloud.netserve.NetworkChannel` against the in-process
:class:`~repro.cloud.cluster.ClusterServer` reference:

* golden query set byte-identical over TCP for both codecs, via
  sequential calls, pipelined ``call_many``, and
  ``call_many_resilient``;
* the whole client stack (``DataUser``, ``RetryingChannel``,
  ``RemoteIndexMaintainer``) works over loopback unmodified;
* killing a worker process mid-sequence degrades to a
  :class:`~repro.cloud.cluster.PartialResult` naming the dead shard,
  and the per-worker circuit breaker opens;
* an over-capacity burst is shed with explicit
  ``ServerOverloadedError`` responses — never a hang or a dropped
  frame — and the server stays healthy afterwards;
* clean shutdown reaps every worker process and releases the port.
"""

import random
import socket
import time

import pytest

from repro.cloud.cluster import (
    DEFAULT_SHARD_SEED,
    ClusterServer,
    routing_address,
    shard_for_address,
)
from repro.cloud.netserve import NetServer, NetworkChannel
from repro.cloud.network import Channel, Transport
from repro.cloud.owner import DataOwner
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    SearchRequest,
    SearchResponse,
    encode_frame,
)
from repro.cloud.retry import BreakerConfig, RetryingChannel, RetryPolicy
from repro.cloud.updates import RemoteIndexMaintainer
from repro.cloud.user import DataUser
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus.loader import Document
from repro.errors import CallDroppedError, TransportError
from repro.obs import Obs

VOCAB = [f"term{i:02d}" for i in range(32)]
NUM_SHARDS = 4
TOKEN = b"netserve-update-token"


@pytest.fixture(scope="module")
def world():
    """One outsourced deployment shared by every read-only test."""
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    rng = random.Random(42)
    documents = [
        Document(
            doc_id=f"doc{i}",
            title=f"doc {i}",
            text=" ".join(rng.choice(VOCAB) for _ in range(40)),
        )
        for i in range(20)
    ]
    outsourcing = owner.setup(documents)
    return scheme, owner, outsourcing


@pytest.fixture(scope="module")
def server(world):
    """A running 4-worker NetServer over the shared deployment."""
    _, _, outsourcing = world
    with NetServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        num_shards=NUM_SHARDS,
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def reference(world):
    """The deterministic in-process cluster the sockets must match."""
    _, _, outsourcing = world
    cluster = ClusterServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        num_shards=NUM_SHARDS,
    )
    with cluster:
        yield cluster


@pytest.fixture(scope="module")
def golden(world):
    """Every vocabulary keyword as a SearchRequest, in both codecs."""
    scheme, owner, _ = world
    requests = []
    for keyword in VOCAB:
        term = owner.analyzer.analyze_query(keyword)
        trapdoor = scheme.trapdoor(owner.key, term).serialize()
        for codec in (CODEC_JSON, CODEC_BINARY):
            requests.append(
                SearchRequest(trapdoor_bytes=trapdoor, top_k=5).to_bytes(
                    codec
                )
            )
    return requests


def fresh_server(world, **kwargs):
    """A private NetServer for tests that mutate or destroy state."""
    _, _, outsourcing = world
    return NetServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        num_shards=NUM_SHARDS,
        **kwargs,
    )


class TestGoldenByteIdentity:
    def test_sequential_calls_match_in_process(
        self, server, reference, golden
    ):
        with NetworkChannel(server.host, server.port) as channel:
            for request in golden:
                assert channel.call(request) == reference.handle(request)

    def test_pipelined_batch_matches_in_process(
        self, server, reference, golden
    ):
        with NetworkChannel(server.host, server.port) as channel:
            over_wire = channel.call_many(golden)
        assert over_wire == reference.handle_many(golden)

    def test_resilient_batch_is_complete_when_healthy(
        self, server, reference, golden
    ):
        with NetworkChannel(server.host, server.port) as channel:
            result = channel.call_many_resilient(golden)
        assert result.missing_shards == ()
        assert result.failures == ()
        assert list(result.responses) == reference.handle_many(golden)

    def test_responses_decode_and_mirror_request_codec(
        self, server, golden
    ):
        with NetworkChannel(server.host, server.port) as channel:
            for request in golden:
                response = SearchResponse.from_bytes(
                    channel.call(request)
                )
                assert response.files  # every vocab term matches docs

    def test_stats_mirror_in_process_channel(self, server, golden):
        batch = golden[:8]
        with NetworkChannel(server.host, server.port) as channel:
            for request in batch:
                channel.call(request)
            network = channel.stats.snapshot()
        assert network.round_trips == len(batch)
        assert network.failed_calls == 0
        assert network.bytes_to_server == sum(len(r) for r in batch)
        assert network.bytes_to_user > 0

    def test_network_channel_satisfies_transport(self, server):
        with NetworkChannel(server.host, server.port) as channel:
            assert isinstance(channel, Transport)


class TestClientStack:
    def test_data_user_matches_in_process(self, world, server, reference):
        scheme, owner, _ = world
        credentials = owner.authorize_user()
        with NetworkChannel(server.host, server.port) as channel:
            remote = DataUser(
                scheme, credentials, channel, owner.analyzer
            ).search_ranked_topk(VOCAB[3], k=5)
        local = DataUser(
            scheme,
            credentials,
            Channel(reference.handle),
            owner.analyzer,
        ).search_ranked_topk(VOCAB[3], k=5)
        assert remote == local
        assert remote  # non-trivial: the keyword matches documents

    def test_binary_codec_user_over_loopback(self, world, server):
        scheme, owner, _ = world
        with NetworkChannel(server.host, server.port) as channel:
            hits = DataUser(
                scheme,
                owner.authorize_user(),
                channel,
                owner.analyzer,
                codec=CODEC_BINARY,
            ).search_ranked_topk(VOCAB[7], k=3)
        assert len(hits) == 3
        assert [hit.rank for hit in hits] == [1, 2, 3]

    def test_retrying_channel_wraps_network_channel(
        self, world, server
    ):
        scheme, owner, _ = world
        with NetworkChannel(server.host, server.port) as channel:
            retrying = RetryingChannel(channel, RetryPolicy())
            hits = DataUser(
                scheme, owner.authorize_user(), retrying, owner.analyzer
            ).search_ranked_topk(VOCAB[11], k=2)
        assert len(hits) == 2

    def test_reconnects_after_explicit_close(self, server, golden):
        channel = NetworkChannel(server.host, server.port)
        try:
            first = channel.call(golden[0])
            channel.close()
            # The next call must transparently re-dial.
            assert channel.call(golden[0]) == first
        finally:
            channel.close()


class TestUpdatesOverNetwork:
    def test_maintainer_insert_and_remove(self):
        """The owner's update driver works over real sockets unchanged.

        put-blob / remove-blob are broadcast to every worker process
        (each holds a full blob-store replica), so the new document
        must be retrievable no matter which shard ranks it.
        """
        scheme = EfficientRSSE(TEST_PARAMETERS)
        owner = DataOwner(scheme)
        documents = [
            Document(
                doc_id=f"doc{i}",
                title=f"doc {i}",
                text="alpha beta gamma " * (i + 1),
            )
            for i in range(6)
        ]
        outsourcing = owner.setup(documents)
        with NetServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
            update_token=TOKEN,
        ) as srv, NetworkChannel(srv.host, srv.port) as channel:
            maintainer = RemoteIndexMaintainer(owner, channel, TOKEN)

            def matches(keyword):
                term = owner.analyzer.analyze_query(keyword)
                request = SearchRequest(
                    trapdoor_bytes=scheme.trapdoor(
                        owner.key, term
                    ).serialize(),
                    top_k=None,
                ).to_bytes()
                return {
                    m[0]
                    for m in SearchResponse.from_bytes(
                        channel.call(request)
                    ).matches
                }

            before = matches("alpha")
            maintainer.insert_document(
                Document(
                    doc_id="new-doc",
                    title="new doc",
                    text="alpha alpha delta",
                )
            )
            assert matches("alpha") == before | {"new-doc"}
            user = DataUser(
                scheme, owner.authorize_user(), channel, owner.analyzer
            )
            retrieved = user.search_ranked_topk("delta", k=1)
            assert [hit.file_id for hit in retrieved] == ["new-doc"]
            maintainer.remove_document("new-doc")
            assert matches("alpha") == before


class TestFaults:
    def test_killed_worker_yields_partial_result(self, world, golden):
        with fresh_server(world) as srv, NetworkChannel(
            srv.host, srv.port
        ) as channel:
            healthy = channel.call_many(golden)
            victim = 2
            srv.kill_worker(victim)
            result = channel.call_many_resilient(golden)
            assert result.missing_shards == (victim,)
            routed = [
                shard_for_address(
                    routing_address(request),
                    NUM_SHARDS,
                    DEFAULT_SHARD_SEED,
                )
                for request in golden
            ]
            for position, request in enumerate(golden):
                if routed[position] == victim:
                    assert result.responses[position] is None
                else:
                    # Surviving shards still serve byte-identical
                    # responses.
                    assert (
                        result.responses[position] == healthy[position]
                    )
            failed_positions = {
                position for position, _, _ in result.failures
            }
            assert failed_positions == {
                position
                for position, shard in enumerate(routed)
                if shard == victim
            }

    def test_circuit_breaker_opens_for_dead_worker(self, world, golden):
        breaker = BreakerConfig(failure_threshold=3)
        with fresh_server(world, breaker=breaker) as srv, NetworkChannel(
            srv.host, srv.port
        ) as channel:
            victim = 1
            srv.kill_worker(victim)
            channel.call_many_resilient(golden)
            health = srv.worker_health
            assert health[victim].state == "open"
            alive = [
                snapshot.state
                for shard, snapshot in enumerate(health)
                if shard != victim
            ]
            assert alive == ["closed"] * (NUM_SHARDS - 1)

    def test_strict_batch_raises_for_dead_worker(self, world, golden):
        with fresh_server(world) as srv, NetworkChannel(
            srv.host, srv.port
        ) as channel:
            srv.kill_worker(0)
            with pytest.raises(TransportError):
                channel.call_many(golden)


class TestOverload:
    def test_burst_is_shed_with_explicit_errors(self, world, golden):
        """2x-capacity pipelined burst: every request gets an answer.

        With the queue-depth high-water mark at 4 and slow workers,
        most of a 64-deep pipelined burst must be rejected with
        ``ServerOverloadedError`` — an explicit response, not a
        dropped frame or an unbounded queue — and the connection and
        server stay fully usable afterwards.
        """
        obs = Obs.enabled()
        with fresh_server(
            world,
            max_queue_depth=4,
            max_inflight_per_conn=64,
            worker_delay_s=0.02,
            obs=obs,
        ) as srv, NetworkChannel(srv.host, srv.port) as channel:
            result = channel.call_many_resilient(golden)
            assert len(result.responses) == len(golden)
            shed = [
                (position, error)
                for position, _, error in result.failures
            ]
            assert shed, "burst never hit the admission limit"
            assert {error for _, error in shed} == {
                "ServerOverloadedError"
            }
            served = [r for r in result.responses if r is not None]
            assert served, "admission control shed the entire burst"
            # Accounting: the obs rejection counter saw every shed
            # request.
            assert obs.metrics.snapshot().value(
                "repro_net_overload_rejections_total"
            ) == len(shed)
            # The server is healthy after the storm.
            assert channel.call(golden[0]) is not None
            assert all(
                snapshot.state == "closed"
                for snapshot in srv.worker_health
            )


class TestObservability:
    def test_connection_gauge_and_request_counter(self, world, golden):
        obs = Obs.enabled()
        with fresh_server(world, obs=obs) as srv:
            with NetworkChannel(srv.host, srv.port) as channel:
                channel.call_many(golden[:6])
                value = obs.metrics.snapshot().value
                assert value("repro_net_connections") == 1
                assert value(
                    "repro_net_requests_total", kind="search"
                ) == 6
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if (
                    obs.metrics.snapshot().value("repro_net_connections")
                    == 0
                ):
                    break
                time.sleep(0.01)
            assert (
                obs.metrics.snapshot().value("repro_net_connections") == 0
            )


class TestShutdown:
    def test_close_reaps_workers_and_releases_port(self, world, golden):
        srv = fresh_server(world).start()
        port = srv.port
        with NetworkChannel(srv.host, port) as channel:
            channel.call(golden[0])
        processes = srv.worker_processes
        assert len(processes) == NUM_SHARDS
        assert all(process.is_alive() for process in processes)
        srv.close()
        assert all(not process.is_alive() for process in processes)
        with pytest.raises(CallDroppedError):
            NetworkChannel(srv.host, port).call(golden[0])

    def test_close_is_idempotent(self, world):
        srv = fresh_server(world).start()
        srv.close()
        srv.close()
        assert all(
            not process.is_alive() for process in srv.worker_processes
        )


class TestProtocolHygiene:
    def test_framing_violation_closes_connection(self, server, golden):
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as raw:
            raw.sendall(b"\x00\x00\x00\x00")  # zero-length frame
            assert raw.recv(4096) == b""  # server hangs up
        # The violation is contained to that connection.
        with NetworkChannel(server.host, server.port) as channel:
            assert channel.call(golden[0])

    def test_oversized_frame_closes_connection(self, server, golden):
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as raw:
            raw.sendall((2**31).to_bytes(4, "big"))
            assert raw.recv(4096) == b""
        with NetworkChannel(server.host, server.port) as channel:
            assert channel.call(golden[0])

    def test_interleaved_codecs_on_one_connection(
        self, server, reference, golden
    ):
        """JSON and binary requests share a connection freely."""
        mixed = golden[:10]  # alternating codecs by construction
        with NetworkChannel(server.host, server.port) as channel:
            assert channel.call_many(mixed) == reference.handle_many(
                mixed
            )

    def test_valid_frame_sent_raw_round_trips(self, server, golden):
        with socket.create_connection(
            (server.host, server.port), timeout=5.0
        ) as raw:
            raw.sendall(encode_frame(golden[0]))
            header = b""
            while len(header) < 4:
                header += raw.recv(4 - len(header))
            length = int.from_bytes(header, "big")
            body = b""
            while len(body) < length:
                body += raw.recv(length - len(body))
        assert SearchResponse.from_bytes(body).files
