"""Loopback tests for the distributed telemetry plane.

Proves the cluster-wide observability story over real sockets and
real worker processes:

* one *stitched* span tree per query — worker ``server.handle`` spans
  parent under the front end's ``net.request`` root across the
  process boundary, in both codecs, with disjoint id ranges;
* the root span accounts for >=95% of measured wall time;
* worker telemetry (counters, leakage events, slow queries) ships
  over the pipe and lands in the merged Prometheus/JSONL artifacts
  with per-worker labels;
* observability is byte-transparent: responses identical obs on/off
  in both codecs;
* breaker-state gauges track a killed worker; the connection gauge
  returns to zero after a churn burst including abrupt disconnects;
* the admin endpoint is deterministic (scrape-twice byte-identity)
  and keeps working while observability is what it reports on;
* ``repro top --once`` renders a health frame over the wire.
"""

import json
import random
import socket
import time

import pytest

from repro.cli import main as cli_main
from repro.cloud.netserve import NetServer, NetworkChannel
from repro.cloud.owner import DataOwner
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    MultiSearchRequest,
    SearchRequest,
    encode_frame,
)
from repro.cloud.retry import BreakerConfig
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus.loader import Document
from repro.errors import ParameterError
from repro.obs import (
    FakeClock,
    MetricsSnapshot,
    Obs,
    SlowQueryLog,
    load_jsonl,
    validate_records,
)

VOCAB = [f"term{i:02d}" for i in range(16)]
NUM_SHARDS = 3


@pytest.fixture(scope="module")
def world():
    """One outsourced deployment shared by every test in this file."""
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    rng = random.Random(90)
    documents = [
        Document(
            doc_id=f"doc{i}",
            title=f"doc {i}",
            text=" ".join(rng.choice(VOCAB) for _ in range(40)),
        )
        for i in range(18)
    ]
    outsourcing = owner.setup(documents)
    return scheme, owner, outsourcing


def obs_bundle(**slowlog_kwargs) -> Obs:
    return Obs.enabled(
        clock=FakeClock(),
        slowlog=SlowQueryLog(**slowlog_kwargs) if slowlog_kwargs else None,
    )


def obs_server(world, obs, **kwargs) -> NetServer:
    _, _, outsourcing = world
    return NetServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        num_shards=NUM_SHARDS,
        obs=obs,
        **kwargs,
    )


def search_bytes(world, keyword: str, codec: str = CODEC_BINARY) -> bytes:
    scheme, owner, _ = world
    term = owner.analyzer.analyze_query(keyword)
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(owner.key, term).serialize(),
        top_k=5,
    ).to_bytes(codec)


def multi_bytes(world, keywords, codec: str = CODEC_BINARY) -> bytes:
    scheme, owner, _ = world
    return MultiSearchRequest(
        trapdoors=tuple(
            scheme.trapdoor(
                owner.key, owner.analyzer.analyze_query(keyword)
            ).serialize()
            for keyword in keywords
        ),
        mode="disjunctive",
        top_k=5,
    ).to_bytes(codec)


class TestStitchedTraces:
    @pytest.mark.parametrize("codec", (CODEC_BINARY, CODEC_JSON))
    def test_one_stitched_tree_per_query(self, world, codec):
        obs = obs_bundle()
        queries = VOCAB[:5]
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            for keyword in queries:
                channel.call(search_bytes(world, keyword, codec))
            dump = load_jsonl(server.export_cluster_jsonl())
        roots = [span for span in dump.spans if span.name == "net.request"]
        assert len(roots) == len(queries)
        handled = [
            span for span in dump.spans if span.name == "server.handle"
        ]
        assert len(handled) == len(queries)
        root_ids = {root.span_id: root for root in roots}
        for span in handled:
            # The worker span hangs directly off the front end's root
            # and shares its trace id, despite living in another
            # process with a disjoint id range.
            assert span.parent_id in root_ids
            assert span.trace_id == root_ids[span.parent_id].trace_id
            assert span.attrs.get("remote_parent") is True
            assert span.attrs.get("worker") in {
                str(shard) for shard in range(NUM_SHARDS)
            }
            assert span.span_id != span.trace_id  # disjoint ranges
        # One tree per query: every query's trace holds exactly one
        # root and at least one worker-side span.
        assert len({root.trace_id for root in roots}) == len(queries)

    def test_multi_search_fans_out_under_one_root(self, world):
        obs = obs_bundle()
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            channel.call(multi_bytes(world, VOCAB[:6]))
            dump = load_jsonl(server.export_cluster_jsonl())
        (root,) = [
            span for span in dump.spans if span.name == "net.request"
        ]
        handled = [
            span for span in dump.spans if span.name == "server.handle"
        ]
        assert len(handled) >= 2  # fanned out to several workers
        assert {span.trace_id for span in handled} == {root.trace_id}
        assert {span.parent_id for span in handled} == {root.span_id}

    def test_root_span_covers_wall_time(self, world):
        """The acceptance gate: >=95% of wall time under the root."""
        best = 0.0
        for _ in range(3):  # deflake: preemption outside the root
            obs = Obs.enabled()  # real clock
            with obs_server(
                world, obs, worker_delay_s=0.05
            ) as server, NetworkChannel(
                server.host, server.port
            ) as channel:
                start = time.perf_counter()
                channel.call(search_bytes(world, VOCAB[0]))
                wall_s = time.perf_counter() - start
            root = next(
                span
                for span in reversed(obs.tracer.spans)
                if span.name == "net.request"
            )
            best = max(best, root.duration_s / wall_s)
            if best >= 0.95:
                break
        assert best >= 0.95, f"root span covers {best:.1%} of wall time"


class TestMergedArtifacts:
    def test_scrape_has_frontend_and_worker_series(self, world):
        obs = obs_bundle()
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            for keyword in VOCAB[:4]:
                channel.call(search_bytes(world, keyword))
            text = server.scrape()
        assert 'repro_net_requests_total{kind="search",worker="frontend"}' in text
        assert "repro_net_connections" in text
        # Worker-side serving counters arrive labeled per shard.
        assert any(
            f'repro_server_searches_total{{worker="{shard}"}}' in text
            for shard in range(NUM_SHARDS)
        )
        # Breaker gauges cover every worker, healthy ones at 0.
        for shard in range(NUM_SHARDS):
            assert (
                f'repro_net_breaker_state{{worker="{shard}"}} 0' in text
            )

    def test_jsonl_artifact_validates_and_carries_worker_leakage(
        self, world
    ):
        obs = obs_bundle()
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            for keyword in VOCAB[:5]:
                channel.call(search_bytes(world, keyword))
            artifact = server.export_cluster_jsonl()
        assert validate_records(artifact) == []
        dump = load_jsonl(artifact)
        assert len(dump.leakage) == 5
        assert all(
            event.worker in {str(shard) for shard in range(NUM_SHARDS)}
            for event in dump.leakage
        )
        # The leakage stream still carries the search/access pattern.
        assert all(event.trapdoor for event in dump.leakage)

    def test_scrape_twice_is_byte_identical(self, world):
        obs = obs_bundle()
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            for keyword in VOCAB[:3]:
                channel.call(search_bytes(world, keyword))
            first = channel.admin("prometheus")
            second = channel.admin("prometheus")
            assert first == second
            assert channel.admin("jsonl") == channel.admin("jsonl")
            assert channel.admin("health") == channel.admin("health")

    def test_admin_sections_well_formed_over_the_wire(self, world):
        obs = obs_bundle()
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            channel.call(search_bytes(world, VOCAB[1]))
            prometheus = channel.admin("prometheus").decode("utf-8")
            artifact = channel.admin("jsonl").decode("utf-8")
            health = json.loads(channel.admin("health"))
            assert prometheus == server.scrape()
            assert artifact == server.export_cluster_jsonl()
            assert health == server.health()
        assert prometheus.startswith("# TYPE")
        assert validate_records(artifact) == []
        assert health["num_shards"] == NUM_SHARDS
        assert set(health["workers"]) == {
            str(shard) for shard in range(NUM_SHARDS)
        }

    def test_admin_requires_observability(self, world):
        with obs_server(world, None) as server, NetworkChannel(
            server.host, server.port
        ) as channel:
            with pytest.raises(ParameterError):
                channel.admin("prometheus")
            with pytest.raises(ParameterError):
                server.scrape()
            with pytest.raises(ParameterError):
                server.health()


class TestTransparency:
    @pytest.mark.parametrize("codec", (CODEC_BINARY, CODEC_JSON))
    def test_responses_identical_with_obs_on_and_off(self, world, codec):
        requests = [
            search_bytes(world, keyword, codec) for keyword in VOCAB
        ]
        requests.append(multi_bytes(world, VOCAB[:4], codec))
        with obs_server(world, None) as plain, NetworkChannel(
            plain.host, plain.port
        ) as channel:
            baseline = [channel.call(request) for request in requests]
        with obs_server(
            world, obs_bundle(), deterministic_obs=True
        ) as traced, NetworkChannel(
            traced.host, traced.port
        ) as channel:
            observed = [channel.call(request) for request in requests]
        assert observed == baseline


class TestBreakerGauges:
    def test_killed_worker_shows_open_in_scrape_and_health(self, world):
        obs = obs_bundle()
        victim = 1
        with obs_server(
            world,
            obs,
            deterministic_obs=True,
            breaker=BreakerConfig(failure_threshold=3),
        ) as server, NetworkChannel(server.host, server.port) as channel:
            server.kill_worker(victim)
            channel.call_many_resilient(
                [search_bytes(world, keyword) for keyword in VOCAB]
            )
            assert server.worker_health[victim].state == "open"
            text = server.scrape()
            health = server.health()
        assert f'repro_net_breaker_state{{worker="{victim}"}} 2' in text
        for shard in range(NUM_SHARDS):
            if shard != victim:
                assert (
                    f'repro_net_breaker_state{{worker="{shard}"}} 0'
                    in text
                )
        assert health["workers"][str(victim)]["breaker"]["state"] == "open"
        # The dead worker's snapshot is simply absent from the merged
        # artifact; the scrape itself keeps working.
        assert f'repro_server_searches_total{{worker="{victim}"}}' not in text


class TestConnectionGauge:
    def wait_for_connection_count(self, server, expected: float) -> float:
        deadline = time.time() + 10.0
        while time.time() < deadline:
            value = MetricsSnapshot(
                points=load_jsonl(server.export_cluster_jsonl()).metrics
            ).value("repro_net_connections", worker="frontend")
            if value == expected:
                return value
            time.sleep(0.02)
        return value

    def test_gauge_returns_to_zero_after_churn_burst(self, world):
        """Clean closes, abrupt resets, and poisoned streams all
        decrement: after the burst the gauge reads exactly zero."""
        obs = obs_bundle()
        with obs_server(world, obs, deterministic_obs=True) as server:
            for round_trip in range(4):  # clean request/response pairs
                with NetworkChannel(server.host, server.port) as channel:
                    channel.call(search_bytes(world, VOCAB[round_trip]))
            for _ in range(3):  # connect and vanish without a request
                sock = socket.create_connection(
                    (server.host, server.port), timeout=5.0
                )
                sock.close()
            for _ in range(3):  # abrupt mid-frame disconnect (RST)
                sock = socket.create_connection(
                    (server.host, server.port), timeout=5.0
                )
                frame = encode_frame(search_bytes(world, VOCAB[0]))
                sock.sendall(frame[: len(frame) // 2])
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                sock.close()
            for _ in range(2):  # framing violation poisons the stream
                sock = socket.create_connection(
                    (server.host, server.port), timeout=5.0
                )
                sock.sendall(b"\xff\xff\xff\xff garbage")
                sock.close()
            assert self.wait_for_connection_count(server, 0.0) == 0.0


class TestSlowQueryLog:
    def test_phase_attribution_ships_from_workers(self, world):
        obs = obs_bundle(threshold_s=0.0)
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            for keyword in VOCAB[:3]:
                channel.call(search_bytes(world, keyword))
            channel.call(multi_bytes(world, VOCAB[:4]))
            dump = load_jsonl(server.export_cluster_jsonl())
        singles = [
            entry for entry in dump.slow if entry.kind == "search"
        ]
        multis = [
            entry for entry in dump.slow if entry.kind == "multi-search"
        ]
        assert len(singles) == 3
        assert multis
        for entry in singles:
            assert [name for name, _ in entry.phases] == [
                "decode",
                "postings",
                "rank",
                "respond",
            ]
            assert entry.total_s == pytest.approx(
                sum(seconds for _, seconds in entry.phases)
            )
            assert entry.worker in {
                str(shard) for shard in range(NUM_SHARDS)
            }
        for entry in multis:
            assert [name for name, _ in entry.phases] == [
                "decode",
                "postings",
                "aggregate",
                "respond",
            ]

    def test_default_thresholds_keep_artifacts_quiet(self, world):
        # Fake-clock phase sums are far below the 0.1s default
        # threshold, so the default-configured slow log stays empty —
        # pre-existing golden artifacts cannot grow new record types.
        obs = obs_bundle()
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            for keyword in VOCAB[:4]:
                channel.call(search_bytes(world, keyword))
            dump = load_jsonl(server.export_cluster_jsonl())
        assert dump.slow == ()


class TestTopCli:
    def test_top_once_renders_health_frame(self, world, capsys):
        obs = obs_bundle(threshold_s=0.0)
        with obs_server(
            world, obs, deterministic_obs=True
        ) as server, NetworkChannel(server.host, server.port) as channel:
            channel.call(search_bytes(world, VOCAB[2]))
            code = cli_main(
                [
                    "top",
                    "--once",
                    "--host",
                    server.host,
                    "--port",
                    str(server.port),
                ]
            )
        out = capsys.readouterr().out
        assert code == 0
        assert f"repro top — {NUM_SHARDS} shard(s)" in out
        for shard in range(NUM_SHARDS):
            assert f"\n  {shard:>5}  yes    closed" in out
        assert "slow queries" in out
        assert "decode=" in out
