"""Unit and equivalence tests for the hot-query result cache.

Covers the cache plumbing underneath the fast lane, bottom-up:

* :class:`~repro.cloud.cache.LruCache` in **bytes mode** — budget
  accounting, LRU eviction under the byte budget, oversize refusal
  (including dropping the stale entry an oversize put meant to
  replace);
* :class:`~repro.cloud.cache.ResultCache` — keying, epoch stamps,
  bump-based invalidation, and the stale-on-arrival guarantee for
  fills that race a mutation;
* :class:`~repro.cloud.server.CloudServer`'s encoded-response memo —
  byte-identical to the memo-off server across both codecs, hit
  counters move, and index/blob mutations invalidate it;
* :class:`~repro.cloud.cluster.ClusterServer`'s result-cache layer —
  byte-identical to the cache-off cluster at 1 and 4 shards, in both
  codecs, through an interleaved insert/remove cycle (every update is
  fanned to the cached *and* the uncached deployment, since each
  snapshots the index at construction);
* the same equivalence over the packed mmap store, and for
  multi-keyword requests (``partial`` responses are never cached).
"""

import copy
import random

import pytest

from repro.cloud import Channel, CloudServer, DataOwner
from repro.cloud.cache import CachedResult, LruCache, ResultCache
from repro.cloud.cluster import ClusterServer
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    MODE_CONJUNCTIVE,
    MODE_DISJUNCTIVE,
    MultiSearchRequest,
    SearchRequest,
)
from repro.cloud.storage import BlobStore
from repro.cloud.store import PackedStore, pack_index
from repro.cloud.updates import RemoteIndexMaintainer
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus.loader import Document
from repro.errors import ParameterError

VOCAB = [f"term{i:02d}" for i in range(16)]
NUM_SHARDS = 4
TOKEN = b"result-cache-token"
CODECS = (CODEC_JSON, CODEC_BINARY)
CACHE_BYTES = 4 << 20


def build_world(seed: int = 11, docs: int = 18):
    """A fresh outsourced deployment (private per mutating test)."""
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    rng = random.Random(seed)
    documents = [
        Document(
            doc_id=f"doc{i:02d}",
            title=f"doc {i}",
            text=" ".join(rng.choice(VOCAB) for _ in range(30)),
        )
        for i in range(docs)
    ]
    outsourcing = owner.setup(documents)
    return scheme, owner, outsourcing


def search_frames(scheme, owner, codec, keywords=VOCAB, top_k=5):
    return [
        SearchRequest(
            trapdoor_bytes=scheme.trapdoor(
                owner.key, owner.analyzer.analyze_query(keyword)
            ).serialize(),
            top_k=top_k,
        ).to_bytes(codec)
        for keyword in keywords
    ]


@pytest.fixture(scope="module")
def world():
    """One shared deployment for the read-only equivalence tests."""
    return build_world()


@pytest.fixture(scope="module")
def golden(world):
    scheme, owner, _ = world
    frames = []
    for codec in CODECS:
        frames.extend(search_frames(scheme, owner, codec))
    return frames


class TestLruBytesMode:
    def test_needs_some_capacity(self):
        with pytest.raises(ParameterError):
            LruCache(capacity=None, capacity_bytes=None)
        with pytest.raises(ParameterError):
            LruCache(capacity=None, capacity_bytes=0)

    def test_byte_budget_evicts_lru_first(self):
        cache = LruCache(capacity=None, capacity_bytes=10)
        cache.put(b"a", b"xxxx")
        cache.put(b"b", b"yyyy")
        assert cache.get(b"a") == b"xxxx"  # touch a: b is now LRU
        cache.put(b"c", b"zzzz")
        assert b"b" not in cache
        assert cache.keys() == [b"a", b"c"]
        assert cache.resident_bytes == 8
        assert cache.evictions == 1

    def test_resident_bytes_tracks_replacement(self):
        cache = LruCache(capacity=None, capacity_bytes=100)
        cache.put(b"k", b"x" * 40)
        assert cache.resident_bytes == 40
        cache.put(b"k", b"x" * 10)
        assert cache.resident_bytes == 10
        cache.pop(b"k")
        assert cache.resident_bytes == 0

    def test_oversize_value_is_refused_and_drops_stale_entry(self):
        cache = LruCache(capacity=None, capacity_bytes=8)
        cache.put(b"k", b"old")
        cache.put(b"k", b"x" * 9)  # over the whole budget
        assert b"k" not in cache
        assert cache.oversize_rejections == 1
        assert cache.resident_bytes == 0

    def test_growing_a_resident_entry_can_evict_others(self):
        cache = LruCache(capacity=None, capacity_bytes=10)
        cache.put(b"a", b"xxx")
        cache.put(b"b", b"yyy")
        cache.put(b"b", b"y" * 8)  # a (LRU) must go to make room
        assert b"a" not in cache
        assert cache.get(b"b") == b"y" * 8
        assert cache.resident_bytes == 8

    def test_entries_and_bytes_bounds_compose(self):
        cache = LruCache(capacity=2, capacity_bytes=1000)
        for key in (b"a", b"b", b"c"):
            cache.put(key, b"v")
        assert len(cache) == 2
        assert cache.resident_bytes == 2


class TestResultCacheUnit:
    def test_key_is_per_codec_and_per_frame(self):
        key = ResultCache.key_for(CODEC_JSON, b"frame")
        assert key == ResultCache.key_for(CODEC_JSON, b"frame")
        assert key != ResultCache.key_for(CODEC_BINARY, b"frame")
        assert key != ResultCache.key_for(CODEC_JSON, b"other")

    def test_put_get_roundtrip_carries_payload(self):
        cache = ResultCache(1024, num_shards=4)
        key = ResultCache.key_for(CODEC_JSON, b"req")
        stamps = cache.stamp((2,))
        cache.put(key, stamps, b"resp", payload=("obs",))
        entry = cache.get(key)
        assert isinstance(entry, CachedResult)
        assert entry.frame == b"resp"
        assert entry.payload == ("obs",)
        assert cache.stats()["hits"] == 1

    def test_bump_invalidates_only_stamped_shards(self):
        cache = ResultCache(1024, num_shards=4)
        key_a = ResultCache.key_for(CODEC_JSON, b"a")
        key_b = ResultCache.key_for(CODEC_JSON, b"b")
        cache.put(key_a, cache.stamp((0,)), b"ra")
        cache.put(key_b, cache.stamp((3,)), b"rb")
        cache.bump(0)
        assert cache.get(key_a) is None
        assert cache.get(key_b).frame == b"rb"
        cache.bump(None)
        assert cache.get(key_b) is None
        assert cache.stats()["invalidations"] == 2
        assert cache.resident_bytes == 0  # dead frames swept eagerly

    def test_racing_fill_lands_dead_on_arrival(self):
        cache = ResultCache(1024, num_shards=2)
        key = ResultCache.key_for(CODEC_BINARY, b"req")
        stamps = cache.stamp((1,))  # taken before dispatch ...
        cache.bump(1)  # ... mutation lands while the fill is in flight
        cache.put(key, stamps, b"stale")
        assert cache.get(key) is None

    def test_byte_budget_bounds_resident_frames(self):
        cache = ResultCache(100, num_shards=1)
        for index in range(10):
            key = ResultCache.key_for(CODEC_JSON, bytes([index]))
            cache.put(key, cache.stamp((0,)), b"x" * 40)
        assert cache.resident_bytes <= 100
        assert len(cache) == 2


class TestCloudServerMemo:
    def test_memoized_responses_byte_identical_and_hit(self, world, golden):
        _, _, outsourcing = world
        plain = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            cache_searches=True,
        )
        memoized = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            cache_searches=True,
            result_cache_bytes=CACHE_BYTES,
        )
        for request in golden:
            assert memoized.handle(request) == plain.handle(request)
        assert memoized.result_cache is not None
        hits_before = memoized.result_cache.hits
        for request in golden:  # now served from the memo
            assert memoized.handle(request) == plain.handle(request)
        assert memoized.result_cache.hits >= hits_before + len(golden)

    def test_update_invalidates_memo(self):
        scheme, owner, outsourcing = build_world(seed=29, docs=8)

        # Each server owns private state: a server that shares another's
        # index would see updates as already applied (the idempotent
        # early-ack) and skip its own cache invalidation — a shape real
        # deployments never have.
        def private_server(**kwargs):
            blobs = BlobStore()
            for file_id in outsourcing.blob_store.ids():
                blobs.put(file_id, outsourcing.blob_store.get(file_id))
            return CloudServer(
                copy.deepcopy(outsourcing.secure_index),
                blobs,
                can_rank=True,
                cache_searches=True,
                update_token=TOKEN,
                **kwargs,
            )

        plain = private_server()
        memoized = private_server(result_cache_bytes=CACHE_BYTES)

        def fan_out(frame: bytes) -> bytes:
            response = memoized.handle(frame)
            plain.handle(frame)
            return response

        maintainer = RemoteIndexMaintainer(owner, Channel(fan_out), TOKEN)
        frames = search_frames(scheme, owner, CODEC_BINARY, VOCAB[:6])

        def check() -> list[bytes]:
            snapshot = []
            for frame in frames:
                expected = plain.handle(frame)
                assert memoized.handle(frame) == expected  # cold or stale
                assert memoized.handle(frame) == expected  # memo hit
                snapshot.append(expected)
            return snapshot

        before = check()
        maintainer.insert_document(
            Document(
                doc_id="doc-new",
                title="new",
                text=f"{VOCAB[0]} {VOCAB[0]} {VOCAB[1]}",
            )
        )
        after_insert = check()
        assert after_insert != before  # the insert is visible through hits
        maintainer.remove_document("doc-new")
        assert check() == before


class TestClusterEquivalence:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("shards", (1, NUM_SHARDS))
    def test_interleaved_updates_byte_identical(self, shards, codec):
        scheme, owner, outsourcing = build_world(seed=23)
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=shards,
            cache_searches=True,
            update_token=TOKEN,
        ) as plain, ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=shards,
            cache_searches=True,
            update_token=TOKEN,
            result_cache_bytes=CACHE_BYTES,
        ) as cached:

            def fan_out(frame: bytes) -> bytes:
                response = cached.handle(frame)
                plain.handle(frame)
                return response

            maintainer = RemoteIndexMaintainer(
                owner, Channel(fan_out), TOKEN, codec=codec
            )
            frames = search_frames(scheme, owner, codec, VOCAB[:8])

            def check() -> list[bytes]:
                snapshot = []
                for frame in frames:
                    expected = plain.handle(frame)
                    assert cached.handle(frame) == expected
                    assert cached.handle(frame) == expected  # hit path
                    snapshot.append(expected)
                return snapshot

            before = check()
            assert cached.result_cache is not None
            assert cached.result_cache.stats()["hits"] > 0
            maintainer.insert_document(
                Document(
                    doc_id="doc-new",
                    title="new",
                    text=f"{VOCAB[0]} {VOCAB[0]} {VOCAB[2]}",
                )
            )
            after_insert = check()
            assert after_insert != before
            maintainer.remove_document("doc-new")
            assert check() == before

    @pytest.mark.parametrize("mode", (MODE_CONJUNCTIVE, MODE_DISJUNCTIVE))
    def test_multi_search_transparent_through_cache_layer(self, world, mode):
        """Multi-search bypasses the cluster's result cache (it is cached
        at the NetServer front end, which owns the shard fan-out) — the
        cache layer must stay byte-transparent for it, and ``partial``
        responses must never land in the cache."""
        scheme, owner, outsourcing = world
        queries = [VOCAB[:2], VOCAB[2:5], VOCAB[5:7]]

        def multi_frame(terms, partial=False):
            return MultiSearchRequest(
                trapdoors=tuple(
                    scheme.trapdoor(
                        owner.key, owner.analyzer.analyze_query(term)
                    ).serialize()
                    for term in terms
                ),
                mode=mode,
                top_k=4,
                partial=partial,
            ).to_bytes(CODEC_BINARY)

        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
            cache_searches=True,
        ) as plain, ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
            cache_searches=True,
            result_cache_bytes=CACHE_BYTES,
        ) as cached:
            for terms in queries:
                frame = multi_frame(terms)
                expected = plain.handle(frame)
                assert cached.handle(frame) == expected
                assert cached.handle(frame) == expected
            entries_before = cached.result_cache.stats()["entries"]
            # A partial=True response carries protected per-term fields
            # for client-side coverage accounting — never cached.
            partial_frame = multi_frame(VOCAB[:3], partial=True)
            assert cached.handle(partial_frame) == plain.handle(
                partial_frame
            )
            assert (
                cached.result_cache.stats()["entries"] == entries_before
            )


class TestPackedStoreEquivalence:
    def test_interleaved_updates_over_packed_store(self, tmp_path):
        scheme, owner, outsourcing = build_world(seed=31, docs=10)

        def deployment(name, **kwargs):
            path = pack_index(
                outsourcing.secure_index, tmp_path / f"{name}.rpk"
            )
            store = PackedStore(path)
            blobs = BlobStore()
            for file_id in outsourcing.blob_store.ids():
                blobs.put(file_id, outsourcing.blob_store.get(file_id))
            return store, CloudServer(
                store,
                blobs,
                can_rank=True,
                cache_searches=True,
                update_token=TOKEN,
                **kwargs,
            )

        plain_store, plain = deployment("plain")
        cached_store, cached = deployment(
            "cached", result_cache_bytes=CACHE_BYTES
        )
        with plain_store, cached_store:

            def fan_out(frame: bytes) -> bytes:
                response = cached.handle(frame)
                plain.handle(frame)
                return response

            maintainer = RemoteIndexMaintainer(owner, Channel(fan_out), TOKEN)
            frames = search_frames(scheme, owner, CODEC_BINARY, VOCAB[:6])

            def check() -> list[bytes]:
                snapshot = []
                for frame in frames:
                    expected = plain.handle(frame)
                    assert cached.handle(frame) == expected
                    assert cached.handle(frame) == expected
                    snapshot.append(expected)
                return snapshot

            before = check()
            maintainer.insert_document(
                Document(
                    doc_id="doc-new",
                    title="new",
                    text=f"{VOCAB[1]} {VOCAB[1]} {VOCAB[3]}",
                )
            )
            assert check() != before
            maintainer.remove_document("doc-new")
            assert check() == before
