"""Binary wire framing: roundtrips, codec detection, and JSON
equivalence.

Every message type of the protocol (search, fetch, responses, and the
three update messages plus ack) must roundtrip through the binary
codec, decode from either codec without being told which one was used
(auto-detection off the first byte), and carry exactly the same
semantic content as its JSON encoding — the property tests drive all
of that from generated payloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.protocol import (
    BINARY_TAGS,
    CODEC_BINARY,
    CODEC_JSON,
    MULTI_MODES,
    ErrorResponse,
    FileRequest,
    MultiSearchRequest,
    MultiSearchResponse,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
    detect_codec,
    pack_multi_score,
    pack_partial_score,
    peek_kind,
    require_codec,
    unpack_multi_score,
    unpack_partial_score,
)
from repro.cloud.updates import (
    AckResponse,
    PutBlobRequest,
    RemoveBlobRequest,
    UpdateListRequest,
)
from repro.errors import ProtocolError

file_ids = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
    min_size=1,
    max_size=20,
)
blobs = st.binary(max_size=256)
pairs = st.tuples(file_ids, blobs)


class TestCodecSelection:
    def test_unknown_codec_rejected(self):
        with pytest.raises(ProtocolError):
            require_codec("msgpack")
        with pytest.raises(ProtocolError):
            SearchRequest(trapdoor_bytes=b"\x01").to_bytes("msgpack")

    def test_detect_json(self):
        data = SearchRequest(trapdoor_bytes=b"\x01").to_bytes(CODEC_JSON)
        assert detect_codec(data) == CODEC_JSON

    def test_detect_binary(self):
        data = SearchRequest(trapdoor_bytes=b"\x01").to_bytes(CODEC_BINARY)
        assert detect_codec(data) == CODEC_BINARY

    def test_detect_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            detect_codec(b"\x00\x01\x02")
        with pytest.raises(ProtocolError):
            detect_codec(b"")

    def test_binary_tags_disjoint_from_json(self):
        # One-byte dispatch is sound: no tag collides with '{' (0x7b).
        assert ord("{") not in BINARY_TAGS.values()
        assert len(set(BINARY_TAGS.values())) == len(BINARY_TAGS)

    def test_peek_kind_reads_one_byte_tag(self):
        data = FileRequest(file_ids=("a",)).to_bytes(CODEC_BINARY)
        # peek_kind on a truncated binary message still answers from
        # the tag byte alone — no full parse.
        assert peek_kind(data[:1]) == "fetch"


class TestBinaryFraming:
    def test_truncated_frame_rejected(self):
        data = SearchRequest(trapdoor_bytes=b"\x01" * 8).to_bytes(
            CODEC_BINARY
        )
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(data[:-3])

    def test_trailing_bytes_rejected(self):
        data = SearchRequest(trapdoor_bytes=b"\x01").to_bytes(CODEC_BINARY)
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(data + b"\x00")

    def test_cross_kind_rejected(self):
        data = FileRequest(file_ids=("a",)).to_bytes(CODEC_BINARY)
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(data)

    def test_no_hex_doubling(self):
        blob = b"\xaa" * 1000
        binary = SearchResponse(files=(("d", blob),)).to_bytes(CODEC_BINARY)
        json_encoded = SearchResponse(files=(("d", blob),)).to_bytes(
            CODEC_JSON
        )
        assert len(binary) < len(blob) + 200
        assert len(json_encoded) > 2 * len(blob)


class TestRoundtripProperties:
    """JSON<->binary equivalence for every message type."""

    @settings(max_examples=50)
    @given(
        trapdoor=st.binary(min_size=1, max_size=64),
        top_k=st.one_of(st.none(), st.integers(1, 2**32 - 1)),
        entries_only=st.booleans(),
    )
    def test_search_request(self, trapdoor, top_k, entries_only):
        message = SearchRequest(
            trapdoor_bytes=trapdoor, top_k=top_k, entries_only=entries_only
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert detect_codec(data) == codec
            assert peek_kind(data) == "search"
            assert SearchRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(
        matches=st.lists(pairs, max_size=8),
        files=st.lists(pairs, max_size=8),
    )
    def test_search_response(self, matches, files):
        message = SearchResponse(
            matches=tuple(matches), files=tuple(files)
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "search-response"
            assert SearchResponse.from_bytes(data) == message

    @settings(max_examples=50)
    @given(ids=st.lists(file_ids, max_size=8))
    def test_file_request(self, ids):
        message = FileRequest(file_ids=tuple(ids))
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "fetch"
            assert FileRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(files=st.lists(pairs, max_size=8))
    def test_ranked_files_response(self, files):
        message = RankedFilesResponse(files=tuple(files))
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "files"
            assert RankedFilesResponse.from_bytes(data) == message

    @settings(max_examples=50)
    @given(
        token=st.binary(max_size=32),
        address=st.binary(min_size=1, max_size=32),
        entries=st.lists(st.binary(min_size=1, max_size=64), max_size=8),
        mode=st.sampled_from(["append", "replace"]),
    )
    def test_update_list_request(self, token, address, entries, mode):
        message = UpdateListRequest(
            token=token,
            address=address,
            entries=tuple(entries),
            mode=mode,
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "update-list"
            assert UpdateListRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(token=st.binary(max_size=32), pair=pairs)
    def test_put_blob_request(self, token, pair):
        file_id, blob = pair
        message = PutBlobRequest(token=token, file_id=file_id, blob=blob)
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "put-blob"
            assert PutBlobRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(token=st.binary(max_size=32), file_id=file_ids)
    def test_remove_blob_request(self, token, file_id):
        message = RemoveBlobRequest(token=token, file_id=file_id)
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "remove-blob"
            assert RemoveBlobRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(
        trapdoors=st.lists(
            st.binary(min_size=1, max_size=64), min_size=1, max_size=6
        ),
        mode=st.sampled_from(sorted(MULTI_MODES)),
        top_k=st.one_of(st.none(), st.integers(1, 2**32 - 1)),
        partial=st.booleans(),
    )
    def test_multi_search_request(self, trapdoors, mode, top_k, partial):
        message = MultiSearchRequest(
            trapdoors=tuple(trapdoors),
            mode=mode,
            top_k=top_k,
            partial=partial,
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert detect_codec(data) == codec
            assert peek_kind(data) == "multi-search"
            assert MultiSearchRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(
        matches=st.lists(pairs, max_size=8),
        files=st.lists(pairs, max_size=8),
    )
    def test_multi_search_response(self, matches, files):
        message = MultiSearchResponse(
            matches=tuple(matches), files=tuple(files)
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "multi-search-response"
            assert MultiSearchResponse.from_bytes(data) == message

    @settings(max_examples=50)
    @given(ok=st.booleans(), detail=st.text(max_size=40))
    def test_ack_response(self, ok, detail):
        message = AckResponse(ok=ok, detail=detail)
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "ack"
            assert AckResponse.from_bytes(data) == message


class TestDispatchEdgeCases:
    """Pin the single-byte dispatch path against degenerate payloads.

    ``detect_codec`` and ``peek_kind`` are the very first thing the
    network front end runs on every frame, so their behavior on empty,
    one-byte, and tag-colliding inputs is part of the wire contract.
    """

    def test_empty_payload_rejected_everywhere(self):
        with pytest.raises(ProtocolError):
            detect_codec(b"")
        with pytest.raises(ProtocolError):
            peek_kind(b"")

    def test_single_tag_byte_is_enough_to_peek(self):
        # A one-byte payload carrying a known tag dispatches — the
        # rest of the message is someone else's problem.
        for kind, tag in BINARY_TAGS.items():
            assert detect_codec(bytes([tag])) == CODEC_BINARY
            assert peek_kind(bytes([tag])) == kind

    def test_single_unknown_byte_rejected(self):
        for first in (0x00, 0x41, 0x7A, 0x7C, 0xA0, 0xFF):
            with pytest.raises(ProtocolError):
                detect_codec(bytes([first]))
            with pytest.raises(ProtocolError):
                peek_kind(bytes([first]))

    def test_tag_colliding_first_byte_detects_binary(self):
        # Garbage that merely *starts* with a registered tag byte is
        # classified binary by the one-byte rule; rejecting it is the
        # full parser's job, never the dispatcher's.
        garbage = bytes([BINARY_TAGS["search"]]) + b"\xde\xad\xbe\xef"
        assert detect_codec(garbage) == CODEC_BINARY
        assert peek_kind(garbage) == "search"
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(garbage)

    def test_json_payload_must_carry_string_kind(self):
        with pytest.raises(ProtocolError):
            peek_kind(b"{}")
        with pytest.raises(ProtocolError):
            peek_kind(b'{"kind": 7}')
        with pytest.raises(ProtocolError):
            peek_kind(b'{"kind": null}')
        with pytest.raises(ProtocolError):
            peek_kind(b"{not json")
        assert peek_kind(b'{"kind": "search"}') == "search"

    def test_json_array_rejected(self):
        # '[' is not '{': arrays never reach the JSON kind probe.
        with pytest.raises(ProtocolError):
            detect_codec(b'["kind", "search"]')


class TestMultiSearchValidation:
    """Construction and framing rules for the multi-keyword messages."""

    def test_empty_trapdoors_rejected(self):
        with pytest.raises(ProtocolError):
            MultiSearchRequest(trapdoors=())

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProtocolError):
            MultiSearchRequest(trapdoors=(b"\x01",), mode="xor")

    def test_bad_top_k_rejected(self):
        with pytest.raises(ProtocolError):
            MultiSearchRequest(trapdoors=(b"\x01",), top_k=0)
        with pytest.raises(ProtocolError):
            MultiSearchRequest(trapdoors=(b"\x01",), top_k=-3)

    def test_truncated_binary_frame_rejected(self):
        data = MultiSearchRequest(
            trapdoors=(b"\x01" * 8, b"\x02" * 8), top_k=4
        ).to_bytes(CODEC_BINARY)
        with pytest.raises(ProtocolError):
            MultiSearchRequest.from_bytes(data[:-3])

    def test_trailing_bytes_rejected(self):
        data = MultiSearchRequest(trapdoors=(b"\x01",)).to_bytes(
            CODEC_BINARY
        )
        with pytest.raises(ProtocolError):
            MultiSearchRequest.from_bytes(data + b"\x00")

    def test_cross_kind_rejected(self):
        data = SearchRequest(trapdoor_bytes=b"\x01").to_bytes(CODEC_BINARY)
        with pytest.raises(ProtocolError):
            MultiSearchRequest.from_bytes(data)
        multi = MultiSearchRequest(trapdoors=(b"\x01",)).to_bytes(
            CODEC_BINARY
        )
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(multi)

    @settings(max_examples=50)
    @given(total=st.integers(0, 2**64 - 1))
    def test_multi_score_roundtrip(self, total):
        packed = pack_multi_score(total)
        assert len(packed) == 8
        assert unpack_multi_score(packed) == total

    @settings(max_examples=50)
    @given(
        total=st.integers(0, 2**64 - 1),
        terms=st.integers(1, 2**32 - 1),
    )
    def test_partial_score_roundtrip(self, total, terms):
        packed = pack_partial_score(total, terms)
        assert len(packed) == 12
        assert unpack_partial_score(packed) == (total, terms)

    def test_score_packing_rejects_out_of_range(self):
        with pytest.raises(ProtocolError):
            pack_multi_score(-1)
        with pytest.raises(ProtocolError):
            pack_multi_score(2**64)
        with pytest.raises(ProtocolError):
            pack_partial_score(1, 0)
        with pytest.raises(ProtocolError):
            unpack_multi_score(b"\x00" * 7)
        with pytest.raises(ProtocolError):
            unpack_partial_score(b"\x00" * 8)


class TestErrorResponseRoundtrip:
    @settings(max_examples=50)
    @given(
        code=st.text(
            alphabet=st.characters(codec="utf-8"), min_size=1, max_size=40
        ),
        detail=st.text(max_size=80),
        shard=st.one_of(st.none(), st.integers(min_value=0, max_value=99)),
    )
    def test_roundtrip_both_codecs(self, code, detail, shard):
        message = ErrorResponse(code=code, detail=detail, shard=shard)
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert detect_codec(data) == codec
            assert peek_kind(data) == "error"
            assert ErrorResponse.from_bytes(data) == message

    def test_shard_none_survives(self):
        message = ErrorResponse(code="TransportError")
        for codec in (CODEC_JSON, CODEC_BINARY):
            restored = ErrorResponse.from_bytes(message.to_bytes(codec))
            assert restored.shard is None
            assert restored.detail == ""

    def test_malformed_shard_field_rejected(self):
        good = ErrorResponse(
            code="ShardDownError", shard=3
        ).to_bytes(CODEC_BINARY)
        # Stretch the shard field to an invalid width (must be 0 or 4
        # bytes): the last field is length-prefixed, so rewrite it.
        bad = good[:-4] + (5).to_bytes(4, "big")[-4:]
        truncated = bad[: len(bad) - 4] + (2).to_bytes(4, "big") + b"\x00\x01"
        with pytest.raises(ProtocolError):
            ErrorResponse.from_bytes(truncated)
