"""Binary wire framing: roundtrips, codec detection, and JSON
equivalence.

Every message type of the protocol (search, fetch, responses, and the
three update messages plus ack) must roundtrip through the binary
codec, decode from either codec without being told which one was used
(auto-detection off the first byte), and carry exactly the same
semantic content as its JSON encoding — the property tests drive all
of that from generated payloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.protocol import (
    BINARY_TAGS,
    CODEC_BINARY,
    CODEC_JSON,
    FileRequest,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
    detect_codec,
    peek_kind,
    require_codec,
)
from repro.cloud.updates import (
    AckResponse,
    PutBlobRequest,
    RemoveBlobRequest,
    UpdateListRequest,
)
from repro.errors import ProtocolError

file_ids = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\x00"),
    min_size=1,
    max_size=20,
)
blobs = st.binary(max_size=256)
pairs = st.tuples(file_ids, blobs)


class TestCodecSelection:
    def test_unknown_codec_rejected(self):
        with pytest.raises(ProtocolError):
            require_codec("msgpack")
        with pytest.raises(ProtocolError):
            SearchRequest(trapdoor_bytes=b"\x01").to_bytes("msgpack")

    def test_detect_json(self):
        data = SearchRequest(trapdoor_bytes=b"\x01").to_bytes(CODEC_JSON)
        assert detect_codec(data) == CODEC_JSON

    def test_detect_binary(self):
        data = SearchRequest(trapdoor_bytes=b"\x01").to_bytes(CODEC_BINARY)
        assert detect_codec(data) == CODEC_BINARY

    def test_detect_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            detect_codec(b"\x00\x01\x02")
        with pytest.raises(ProtocolError):
            detect_codec(b"")

    def test_binary_tags_disjoint_from_json(self):
        # One-byte dispatch is sound: no tag collides with '{' (0x7b).
        assert ord("{") not in BINARY_TAGS.values()
        assert len(set(BINARY_TAGS.values())) == len(BINARY_TAGS)

    def test_peek_kind_reads_one_byte_tag(self):
        data = FileRequest(file_ids=("a",)).to_bytes(CODEC_BINARY)
        # peek_kind on a truncated binary message still answers from
        # the tag byte alone — no full parse.
        assert peek_kind(data[:1]) == "fetch"


class TestBinaryFraming:
    def test_truncated_frame_rejected(self):
        data = SearchRequest(trapdoor_bytes=b"\x01" * 8).to_bytes(
            CODEC_BINARY
        )
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(data[:-3])

    def test_trailing_bytes_rejected(self):
        data = SearchRequest(trapdoor_bytes=b"\x01").to_bytes(CODEC_BINARY)
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(data + b"\x00")

    def test_cross_kind_rejected(self):
        data = FileRequest(file_ids=("a",)).to_bytes(CODEC_BINARY)
        with pytest.raises(ProtocolError):
            SearchRequest.from_bytes(data)

    def test_no_hex_doubling(self):
        blob = b"\xaa" * 1000
        binary = SearchResponse(files=(("d", blob),)).to_bytes(CODEC_BINARY)
        json_encoded = SearchResponse(files=(("d", blob),)).to_bytes(
            CODEC_JSON
        )
        assert len(binary) < len(blob) + 200
        assert len(json_encoded) > 2 * len(blob)


class TestRoundtripProperties:
    """JSON<->binary equivalence for every message type."""

    @settings(max_examples=50)
    @given(
        trapdoor=st.binary(min_size=1, max_size=64),
        top_k=st.one_of(st.none(), st.integers(1, 2**32 - 1)),
        entries_only=st.booleans(),
    )
    def test_search_request(self, trapdoor, top_k, entries_only):
        message = SearchRequest(
            trapdoor_bytes=trapdoor, top_k=top_k, entries_only=entries_only
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert detect_codec(data) == codec
            assert peek_kind(data) == "search"
            assert SearchRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(
        matches=st.lists(pairs, max_size=8),
        files=st.lists(pairs, max_size=8),
    )
    def test_search_response(self, matches, files):
        message = SearchResponse(
            matches=tuple(matches), files=tuple(files)
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "search-response"
            assert SearchResponse.from_bytes(data) == message

    @settings(max_examples=50)
    @given(ids=st.lists(file_ids, max_size=8))
    def test_file_request(self, ids):
        message = FileRequest(file_ids=tuple(ids))
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "fetch"
            assert FileRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(files=st.lists(pairs, max_size=8))
    def test_ranked_files_response(self, files):
        message = RankedFilesResponse(files=tuple(files))
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "files"
            assert RankedFilesResponse.from_bytes(data) == message

    @settings(max_examples=50)
    @given(
        token=st.binary(max_size=32),
        address=st.binary(min_size=1, max_size=32),
        entries=st.lists(st.binary(min_size=1, max_size=64), max_size=8),
        mode=st.sampled_from(["append", "replace"]),
    )
    def test_update_list_request(self, token, address, entries, mode):
        message = UpdateListRequest(
            token=token,
            address=address,
            entries=tuple(entries),
            mode=mode,
        )
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "update-list"
            assert UpdateListRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(token=st.binary(max_size=32), pair=pairs)
    def test_put_blob_request(self, token, pair):
        file_id, blob = pair
        message = PutBlobRequest(token=token, file_id=file_id, blob=blob)
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "put-blob"
            assert PutBlobRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(token=st.binary(max_size=32), file_id=file_ids)
    def test_remove_blob_request(self, token, file_id):
        message = RemoveBlobRequest(token=token, file_id=file_id)
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "remove-blob"
            assert RemoveBlobRequest.from_bytes(data) == message

    @settings(max_examples=50)
    @given(ok=st.booleans(), detail=st.text(max_size=40))
    def test_ack_response(self, ok, detail):
        message = AckResponse(ok=ok, detail=detail)
        for codec in (CODEC_JSON, CODEC_BINARY):
            data = message.to_bytes(codec)
            assert peek_kind(data) == "ack"
            assert AckResponse.from_bytes(data) == message
