"""End-to-end observability over the resilient serving path.

Four contracts from the ISSUE acceptance list:

* **Golden trace shape** — a hedged, partially-failed
  ``handle_many_resilient`` batch under a pinned key, fake clock, and
  fixed fault seed exports a byte-identical JSONL artifact
  (``data/obs_golden_trace.jsonl``; regenerate with
  ``REPRO_REGEN_OBS_GOLDEN=1``).
* **Coverage** — with a real clock, the root span accounts for >=95%
  of the wall time measured around the call, and the trace contains
  retry-attempt spans.
* **Transparency** — responses are byte-identical with observability
  on and off; tracing never perturbs the serving path.
* **Overhead** (``perf`` marker) — the no-op tracer left in the hot
  path when ``obs=None`` costs under 5% of a query's serving time.

The deployment mirrors ``tests/cloud/test_cluster_faults.py`` but
pins the scheme key (the ``fixed_key`` idiom): leakage events hash
trapdoor addresses, so a random key would unpin the golden bytes.
"""

import hashlib
import os
import random
import time
from pathlib import Path

import pytest

from repro.cloud.cluster import ClusterServer
from repro.cloud.faults import FaultPlan
from repro.cloud.protocol import SearchRequest
from repro.cloud.retry import RetryPolicy
from repro.cloud.storage import BlobStore
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.crypto.keys import SchemeKey
from repro.ir.inverted_index import InvertedIndex
from repro.obs import FakeClock, Obs
from repro.obs.export import load_jsonl, render_report
from repro.obs.trace import NOOP_TRACER

VOCAB = [f"term{i:02d}" for i in range(16)]
GOLDEN_PATH = Path(__file__).parent / "data" / "obs_golden_trace.jsonl"


def pinned_key() -> SchemeKey:
    seed = b"obs-integration-key-0"
    return SchemeKey(
        x=hashlib.blake2b(seed + b"|x", digest_size=16).digest(),
        y=hashlib.blake2b(seed + b"|y", digest_size=16).digest(),
        z=hashlib.blake2b(seed + b"|z", digest_size=16).digest(),
        domain_size=TEST_PARAMETERS.score_levels,
        range_size=TEST_PARAMETERS.range_size,
    )


@pytest.fixture(scope="module")
def deployment():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = pinned_key()
    index = InvertedIndex()
    rng = random.Random(11)
    for doc in range(16):
        index.add_document(
            f"doc{doc}", [rng.choice(VOCAB) for _ in range(30)]
        )
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for doc in range(16):
        blobs.put(f"doc{doc}", b"cipher-" + str(doc).encode())
    return scheme, key, built, blobs


def search_bytes(scheme, key, keyword, k=5):
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(), top_k=k
    ).to_bytes()


def make_cluster(deployment, **kwargs):
    _, _, built, blobs = deployment
    return ClusterServer(
        built.secure_index,
        blobs,
        can_rank=True,
        num_shards=2,
        max_workers=1,
        retry_sleep=lambda _s: None,
        **kwargs,
    )


def golden_artifact(deployment) -> str:
    """The pinned scenario: every shard-0 call is slow enough to
    hedge, shard 1 is crashed for the whole run, and the fake clock
    makes timings (hence the exported bytes) deterministic."""
    scheme, key, _, _ = deployment
    obs = Obs.enabled(clock=FakeClock())
    plan = FaultPlan(
        seed=5,
        delay_rate=1.0,
        delay_s=0.05,
        crash_windows={1: ((0, 200),)},
    )
    policy = RetryPolicy(
        max_attempts=2,
        base_backoff_s=0.0,
        jitter_seed=5,
        hedge_after_s=0.01,
    )
    requests = [
        search_bytes(scheme, key, keyword) for keyword in VOCAB[:6]
    ]
    with make_cluster(
        deployment, fault_plan=plan, retry_policy=policy, obs=obs
    ) as cluster:
        result = cluster.handle_many_resilient(requests)
    assert result.failures, "scenario must include a failed shard"
    assert any(response for response in result.responses), (
        "scenario must include served responses"
    )
    return obs.export_jsonl()


@pytest.fixture(scope="module")
def golden_run(deployment) -> str:
    return golden_artifact(deployment)


class TestGoldenTrace:
    def test_artifact_matches_golden_bytes(self, golden_run):
        if os.environ.get("REPRO_REGEN_OBS_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(exist_ok=True)
            GOLDEN_PATH.write_text(golden_run)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert golden_run == GOLDEN_PATH.read_text()

    def test_artifact_is_reproducible_in_process(self, deployment,
                                                 golden_run):
        assert golden_artifact(deployment) == golden_run

    def test_tree_shape(self, golden_run):
        dump = load_jsonl(golden_run)
        (root,) = dump.roots()
        assert root.name == "cluster.handle_resilient"
        assert root.attrs["requests"] == 6
        assert root.attrs["failed"] >= 1
        dispatches = dump.children(root)
        assert [span.name for span in dispatches] == (
            ["shard.dispatch"] * 6
        )
        outcomes = {
            span.attrs.get("outcome")
            for dispatch in dispatches
            for span in dump.children(dispatch)
            if span.name == "retry.attempt"
        }
        # Healthy shard hedges (delay > hedge_after_s); crashed shard
        # rejects every attempt.
        assert "hedged-ok" in outcomes
        assert "ShardDownError" in outcomes
        served = [
            span
            for span in dump.spans
            if span.name == "server.handle"
        ]
        assert served and all(
            span.attrs["kind"] == "search" for span in served
        )

    def test_leakage_and_metrics_present(self, golden_run):
        dump = load_jsonl(golden_run)
        assert dump.leakage, "served searches must emit leakage events"
        assert all(event.trace_id == 1 for event in dump.leakage)
        names = {point.name for point in dump.metrics}
        assert "repro_cluster_requests_total" in names
        assert "repro_retry_attempts_total" in names
        assert "repro_retry_hedged_total" in names
        assert "repro_server_searches_total" in names


class TestAcceptance:
    def test_root_span_covers_wall_time(self, deployment):
        """The ISSUE gate: spans account for >=95% of measured wall
        time for a resilient batch under injected faults, with at
        least one retry-attempt span, and the report renders."""
        scheme, key, _, _ = deployment
        requests = [
            search_bytes(scheme, key, keyword) for keyword in VOCAB[:8]
        ]
        best = 0.0
        artifact = ""
        for _ in range(3):  # deflake: preemption outside the root
            obs = Obs.enabled()  # real clock
            plan = FaultPlan(
                seed=7, drop_rate=0.25, crash_windows={1: ((0, 6),)}
            )
            policy = RetryPolicy(
                max_attempts=8, base_backoff_s=0.0, jitter_seed=7
            )
            with make_cluster(
                deployment,
                fault_plan=plan,
                retry_policy=policy,
                obs=obs,
            ) as cluster:
                start = time.perf_counter()
                result = cluster.handle_many_resilient(requests)
                wall_s = time.perf_counter() - start
            assert len(result.responses) == len(requests)
            root = next(
                span
                for span in reversed(obs.tracer.spans)
                if span.name == "cluster.handle_resilient"
            )
            artifact = obs.export_jsonl()
            best = max(best, root.duration_s / wall_s)
            if best >= 0.95:
                break
        assert best >= 0.95, f"root span covers {best:.1%} of wall time"
        dump = load_jsonl(artifact)
        attempts = [
            span for span in dump.spans if span.name == "retry.attempt"
        ]
        assert attempts, "fault plan must force retry attempts"
        report = render_report(dump)
        assert "cluster.handle_resilient" in report
        assert "== metrics" in report


class TestTransparency:
    def test_responses_identical_with_obs_on_and_off(self, deployment):
        scheme, key, _, _ = deployment
        with make_cluster(deployment) as plain, make_cluster(
            deployment, obs=Obs.enabled(clock=FakeClock())
        ) as traced:
            for keyword in VOCAB:
                request = search_bytes(scheme, key, keyword)
                assert plain.handle(request) == traced.handle(request)

    def test_degraded_batches_identical_with_obs_on_and_off(
        self, deployment
    ):
        scheme, key, _, _ = deployment
        requests = [
            search_bytes(scheme, key, keyword) for keyword in VOCAB[:6]
        ]

        def run(obs):
            plan = FaultPlan(
                seed=13, drop_rate=0.3, crash_windows={0: ((0, 3),)}
            )
            policy = RetryPolicy(
                max_attempts=6, base_backoff_s=0.0, jitter_seed=13
            )
            with make_cluster(
                deployment,
                fault_plan=plan,
                retry_policy=policy,
                obs=obs,
            ) as cluster:
                return cluster.handle_many_resilient(requests)

        plain = run(None)
        traced = run(Obs.enabled(clock=FakeClock()))
        assert plain.responses == traced.responses
        assert plain.failures == traced.failures
        assert plain.missing_shards == traced.missing_shards


@pytest.mark.perf
class TestOverhead:
    """Guard the ``obs=None`` fast path.

    The un-instrumented seed build no longer exists to race against,
    so the guard bounds what the instrumentation *adds*: the per-span
    cost of the no-op tracer times the spans a query emits must stay
    under 5% of the query's own serving time.  Min-of-repeats on both
    sides keeps the comparison about code, not scheduler noise.
    """

    ROUNDS = 5
    QUERIES_PER_ROUND = 64
    SPAN_LOOPS = 20_000

    def _per_query_seconds(self, cluster, requests) -> float:
        best = float("inf")
        for _ in range(self.ROUNDS):
            start = time.perf_counter()
            for request in requests:
                cluster.handle(request)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed / len(requests))
        return best

    def _noop_span_seconds(self) -> float:
        best = float("inf")
        for _ in range(self.ROUNDS):
            start = time.perf_counter()
            for _ in range(self.SPAN_LOOPS):
                with NOOP_TRACER.span("overhead", attempt=1):
                    pass
            elapsed = time.perf_counter() - start
            best = min(best, elapsed / self.SPAN_LOOPS)
        return best

    def test_noop_tracer_within_five_percent(self, deployment):
        scheme, key, _, _ = deployment
        requests = [
            search_bytes(scheme, key, VOCAB[i % len(VOCAB)])
            for i in range(self.QUERIES_PER_ROUND)
        ]
        with make_cluster(deployment) as plain:
            plain.handle(requests[0])  # warm caches
            query_s = self._per_query_seconds(plain, requests)

        # Count the spans this exact workload actually emits.
        obs = Obs.enabled(clock=FakeClock())
        with make_cluster(deployment, obs=obs) as traced:
            for request in requests[:8]:
                traced.handle(request)
        spans_per_query = len(obs.tracer.spans) / 8

        added_s = spans_per_query * self._noop_span_seconds()
        assert added_s <= 0.05 * query_s, (
            f"no-op tracing adds {added_s * 1e6:.1f}us over a "
            f"{query_s * 1e6:.1f}us query "
            f"({spans_per_query:.0f} spans/query)"
        )
