"""One-round multi-keyword serving: equivalence across every deployment.

The tentpole property: a ``multi-search`` request produces the same
ranking — byte for byte on the wire — no matter how the server is
deployed.  The suite pins the one-round path against the legacy
k-round client-side merge (the semantics oracle), then proves the
response bytes identical across: cache on/off, dict vs packed mmap
store, a single :class:`CloudServer` vs a 4-shard
:class:`ClusterServer`, batch vs one-at-a-time dispatch, and a real
TCP loopback through :class:`NetServer` — in both wire codecs and
both aggregation modes.
"""

import random

import pytest

from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.cloud.cluster import ClusterServer, shard_for_address
from repro.cloud.netserve import NetServer, NetworkChannel
from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    MODE_CONJUNCTIVE,
    MODE_DISJUNCTIVE,
    MultiSearchRequest,
    MultiSearchResponse,
    SearchRequest,
    SearchResponse,
    unpack_multi_score,
    unpack_partial_score,
)
from repro.cloud.store import PackedStore, pack_index
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.core.multi_keyword import MultiKeywordSearcher
from repro.corpus.loader import Document
from repro.errors import ParameterError, ProtocolError
from repro.ir.topk import intersect_sums, rank_pairs, union_sums

# A compact vocabulary over many docs makes conjunctive intersections
# dense — every pair of terms co-occurs somewhere, and score ties are
# common enough to exercise the canonical tie-break.
VOCAB = [f"term{i:02d}" for i in range(10)]
NUM_SHARDS = 4
QUERIES = [
    ["term00", "term01"],
    ["term02", "term03", "term04"],
    ["term00", "term05", "term06", "term07"],
    ["term08", "term09"],
]
MODES = (MODE_CONJUNCTIVE, MODE_DISJUNCTIVE)
CODECS = (CODEC_JSON, CODEC_BINARY)


@pytest.fixture(scope="module")
def world():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    rng = random.Random(7)
    documents = [
        Document(
            doc_id=f"doc{i:02d}",
            title=f"doc {i}",
            text=" ".join(rng.choice(VOCAB) for _ in range(30)),
        )
        for i in range(24)
    ]
    outsourcing = owner.setup(documents)
    return scheme, owner, outsourcing


def trapdoors_for(scheme, owner, terms):
    return tuple(
        scheme.trapdoor(
            owner.key, owner.analyzer.analyze_query(term)
        ).serialize()
        for term in terms
    )


@pytest.fixture(scope="module")
def golden(world):
    """Every query in both modes and codecs, as wire bytes."""
    scheme, owner, _ = world
    requests = []
    for terms in QUERIES:
        trapdoors = trapdoors_for(scheme, owner, terms)
        for mode in MODES:
            for codec in CODECS:
                requests.append(
                    MultiSearchRequest(
                        trapdoors=trapdoors, mode=mode, top_k=5
                    ).to_bytes(codec)
                )
    return requests


def make_server(world, cached=True):
    _, _, outsourcing = world
    return CloudServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        cache_searches=cached,
    )


class TestOneRoundVsLegacy:
    """Semantics oracle: one-round == k-round client-side merge."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("codec", CODECS)
    def test_user_paths_agree(self, world, mode, codec):
        scheme, owner, outsourcing = world
        user = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(make_server(world).handle),
            codec=codec,
        )
        for terms in QUERIES:
            one_round = user.search_multi_topk(terms, 5, mode=mode)
            legacy = user.search_multi_topk_legacy(terms, 5, mode=mode)
            assert one_round == legacy
            assert one_round, terms

    def test_matches_carry_the_opm_sums(self, world):
        """Response score fields are the per-term OPM sums, verifiable
        against k independent single-keyword searches."""
        scheme, owner, _ = world
        server = make_server(world)
        terms = QUERIES[2]
        trapdoors = trapdoors_for(scheme, owner, terms)
        per_term = []
        for trapdoor in trapdoors:
            response = SearchResponse.from_bytes(
                server.handle(
                    SearchRequest(trapdoor_bytes=trapdoor).to_bytes()
                )
            )
            per_term.append(
                {
                    file_id: int.from_bytes(field, "big")
                    for file_id, field in response.matches
                }
            )
        for mode, combine in (
            (MODE_CONJUNCTIVE, intersect_sums),
            (MODE_DISJUNCTIVE, union_sums),
        ):
            response = MultiSearchResponse.from_bytes(
                server.handle(
                    MultiSearchRequest(
                        trapdoors=trapdoors, mode=mode, top_k=4
                    ).to_bytes()
                )
            )
            expected = rank_pairs(combine(per_term), 4)
            assert [
                (file_id, unpack_multi_score(field))
                for file_id, field in response.matches
            ] == expected
            assert [fid for fid, _ in response.files] == [
                fid for fid, _ in expected
            ]

    def test_matches_core_searcher(self, world):
        """The serving path agrees with the in-core reference searcher."""
        scheme, owner, outsourcing = world
        server = make_server(world)
        searcher = MultiKeywordSearcher(scheme, owner.analyzer)
        for terms in QUERIES:
            query = searcher.make_query(owner.key, terms)
            expected = searcher.search_top_k(
                outsourcing.secure_index, query, 5
            )
            response = MultiSearchResponse.from_bytes(
                server.handle(
                    MultiSearchRequest(
                        trapdoors=tuple(
                            trapdoor.serialize()
                            for trapdoor in query.trapdoors
                        ),
                        top_k=5,
                    ).to_bytes()
                )
            )
            assert [
                (file_id, unpack_multi_score(field))
                for file_id, field in response.matches
            ] == [(entry.file_id, int(entry.score)) for entry in expected]


class TestByteIdenticalDeployments:
    def test_cache_on_off_identical(self, world, golden):
        cold = make_server(world, cached=False)
        warm = make_server(world, cached=True)
        for request in golden:
            assert cold.handle(request) == warm.handle(request)
        # And again with the cache actually warm.
        for request in golden:
            assert cold.handle(request) == warm.handle(request)

    def test_dict_vs_packed_store_identical(self, tmp_path, world, golden):
        _, _, outsourcing = world
        path = pack_index(outsourcing.secure_index, tmp_path / "idx.rpk")
        dict_server = make_server(world)
        with PackedStore(path) as store:
            mmap_server = CloudServer(
                store, outsourcing.blob_store, can_rank=True
            )
            for request in golden:
                assert dict_server.handle(request) == mmap_server.handle(
                    request
                )

    def test_single_vs_sharded_identical(self, world, golden):
        _, _, outsourcing = world
        single = make_server(world)
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
        ) as cluster:
            for request in golden:
                assert cluster.handle(request) == single.handle(request)

    def test_single_shard_cluster_identical(self, world, golden):
        _, _, outsourcing = world
        single = make_server(world)
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=1,
        ) as cluster:
            for request in golden:
                assert cluster.handle(request) == single.handle(request)

    def test_batch_matches_single_dispatch(self, world, golden):
        _, _, outsourcing = world
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
        ) as cluster:
            batched = cluster.handle_many(golden)
            assert batched == [cluster.handle(r) for r in golden]
            result = cluster.handle_many_resilient(golden)
            assert result.complete
            assert list(result.responses) == batched

    def test_mixed_batch_single_and_multi(self, world):
        """handle_many interleaves single-keyword and multi requests."""
        scheme, owner, outsourcing = world
        single = make_server(world)
        trapdoors = trapdoors_for(scheme, owner, QUERIES[0])
        batch = [
            SearchRequest(trapdoor_bytes=trapdoors[0], top_k=3).to_bytes(),
            MultiSearchRequest(trapdoors=trapdoors, top_k=3).to_bytes(),
            SearchRequest(trapdoor_bytes=trapdoors[1], top_k=3).to_bytes(
                CODEC_BINARY
            ),
            MultiSearchRequest(
                trapdoors=trapdoors, mode=MODE_DISJUNCTIVE, top_k=3
            ).to_bytes(CODEC_BINARY),
        ]
        with ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
        ) as cluster:
            assert cluster.handle_many(batch) == [
                single.handle(request) for request in batch
            ]


class TestPartialResponses:
    """The shard-internal wire format is also a public request shape."""

    def test_partial_carries_sum_and_term_count(self, world):
        scheme, owner, _ = world
        server = make_server(world)
        terms = QUERIES[1]
        trapdoors = trapdoors_for(scheme, owner, terms)
        response = MultiSearchResponse.from_bytes(
            server.handle(
                MultiSearchRequest(
                    trapdoors=trapdoors, partial=True
                ).to_bytes()
            )
        )
        assert response.files == ()
        assert response.matches
        ids = [file_id for file_id, _ in response.matches]
        assert ids == sorted(ids)
        for _, field in response.matches:
            total, matched = unpack_partial_score(field)
            assert matched == len(terms)
            assert total > 0

    def test_disjunctive_partial_counts_membership(self, world):
        scheme, owner, _ = world
        server = make_server(world)
        terms = QUERIES[1]
        trapdoors = trapdoors_for(scheme, owner, terms)
        response = MultiSearchResponse.from_bytes(
            server.handle(
                MultiSearchRequest(
                    trapdoors=trapdoors,
                    mode=MODE_DISJUNCTIVE,
                    partial=True,
                ).to_bytes()
            )
        )
        counts = {
            unpack_partial_score(field)[1] for _, field in response.matches
        }
        assert counts <= set(range(1, len(terms) + 1))


class TestNetserveLoopback:
    def test_loopback_matches_in_process(self, world, golden):
        _, _, outsourcing = world
        single = make_server(world)
        expected = [single.handle(request) for request in golden]
        with NetServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
        ) as srv, NetworkChannel(srv.host, srv.port) as channel:
            assert [
                channel.call(request) for request in golden
            ] == expected
            assert channel.call_many(golden) == expected

    def test_data_user_over_loopback(self, world):
        scheme, owner, outsourcing = world
        reference = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(make_server(world).handle),
        )
        with NetServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=NUM_SHARDS,
        ) as srv, NetworkChannel(srv.host, srv.port) as channel:
            user = DataUser(
                scheme,
                owner.authorize_user(),
                channel,
                codec=CODEC_BINARY,
            )
            for terms in QUERIES:
                for mode in MODES:
                    assert user.search_multi_topk(
                        terms, 5, mode=mode
                    ) == reference.search_multi_topk(terms, 5, mode=mode)

    def test_cannot_rank_raises_over_loopback(self, world):
        """The server's rejection crosses the wire as an ErrorResponse,
        which the channel re-raises as the original exception type."""
        scheme, owner, outsourcing = world
        trapdoors = trapdoors_for(scheme, owner, QUERIES[0])
        request = MultiSearchRequest(trapdoors=trapdoors, top_k=3)
        with NetServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=False,
            num_shards=2,
        ) as srv, NetworkChannel(srv.host, srv.port) as channel:
            for codec in CODECS:
                with pytest.raises(ProtocolError, match="rankable"):
                    channel.call(request.to_bytes(codec))


class TestValidation:
    def test_server_rejects_when_cannot_rank(self, world):
        scheme, owner, outsourcing = world
        server = CloudServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=False,
        )
        request = MultiSearchRequest(
            trapdoors=trapdoors_for(scheme, owner, QUERIES[0])
        )
        with pytest.raises(ProtocolError):
            server.handle(request.to_bytes())

    def test_user_rejects_duplicates_after_normalization(self, world):
        scheme, owner, _ = world
        user = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(make_server(world).handle),
        )
        with pytest.raises(ParameterError, match="duplicate"):
            user.search_multi_topk(["Term00", "term00"], 3)
        with pytest.raises(ParameterError, match="duplicate"):
            user.search_multi_topk_legacy(["Term00", "term00"], 3)

    def test_user_rejects_bad_mode_and_k(self, world):
        scheme, owner, _ = world
        user = DataUser(
            scheme,
            owner.authorize_user(),
            Channel(make_server(world).handle),
        )
        with pytest.raises(ParameterError):
            user.search_multi_topk(["term00"], 0)
        with pytest.raises(ParameterError):
            user.search_multi_topk(["term00"], 3, mode="xor")

    def test_missing_blob_tolerated(self, world):
        """A file whose blob was removed drops out of the response
        instead of failing the whole query (matching single-keyword
        serving semantics)."""
        scheme, owner, outsourcing = world
        trapdoors = trapdoors_for(scheme, owner, QUERIES[0])
        request = MultiSearchRequest(trapdoors=trapdoors, top_k=5)
        full = MultiSearchResponse.from_bytes(
            make_server(world).handle(request.to_bytes())
        )
        assert full.matches
        victim = full.matches[0][0]
        pruned_blobs = type(outsourcing.blob_store)()
        for file_id in outsourcing.blob_store.ids():
            if file_id != victim:
                pruned_blobs.put(
                    file_id, outsourcing.blob_store.get(file_id)
                )
        server = CloudServer(
            outsourcing.secure_index, pruned_blobs, can_rank=True
        )
        response = MultiSearchResponse.from_bytes(
            server.handle(request.to_bytes())
        )
        returned = [file_id for file_id, _ in response.files]
        assert victim not in returned
        assert returned == [
            file_id for file_id, _ in full.files if file_id != victim
        ]


class TestShardRouting:
    def test_queries_do_span_shards(self, world):
        """The fixture is honest: at least one golden query fans out."""
        scheme, owner, _ = world
        from repro.core.trapdoor import Trapdoor

        spans = set()
        for terms in QUERIES:
            shards = {
                shard_for_address(
                    Trapdoor.deserialize(raw).address, NUM_SHARDS
                )
                for raw in trapdoors_for(scheme, owner, terms)
            }
            spans.add(len(shards))
        assert max(spans) > 1
