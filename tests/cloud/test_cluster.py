"""Unit tests for the sharded serving layer.

Covers shard placement, the :class:`ShardedIndex` partition (routing,
merge-iteration, serialization, placement validation), the
:class:`ClusterServer` front end (byte-equivalence with a single
:class:`CloudServer`, update routing, cache aggregation/invalidation,
stats merging) and the sharded persistence round trip.
"""

import random

import pytest

from repro.cloud.cluster import (
    DEFAULT_SHARD_SEED,
    ClusterServer,
    ShardedIndex,
    shard_for_address,
)
from repro.cloud.network import Channel, LinkModel
from repro.cloud.owner import DataOwner
from repro.cloud.persistence import (
    load_outsourcing,
    load_sharded_outsourcing,
    save_sharded_outsourcing,
)
from repro.cloud.protocol import SearchRequest, SearchResponse
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.cloud.updates import RemoteIndexMaintainer
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.core.secure_index import EntryLayout, SecureIndex
from repro.corpus.loader import Document
from repro.errors import ParameterError, ProtocolError
from repro.ir.inverted_index import InvertedIndex

VOCAB = [f"term{i:02d}" for i in range(32)]


@pytest.fixture(scope="module")
def deployment():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    rng = random.Random(42)
    for doc in range(20):
        index.add_document(
            f"doc{doc}", [rng.choice(VOCAB) for _ in range(40)]
        )
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for doc in range(20):
        blobs.put(f"doc{doc}", b"cipher-" + str(doc).encode())
    return scheme, key, built, blobs


def search_bytes(scheme, key, keyword, k=5):
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(), top_k=k
    ).to_bytes()


class TestShardPlacement:
    def test_stable_and_in_range(self):
        for i in range(100):
            address = f"addr-{i}".encode()
            shard = shard_for_address(address, 4)
            assert shard == shard_for_address(address, 4)
            assert 0 <= shard < 4

    def test_seed_changes_placement(self):
        addresses = [f"addr-{i}".encode() for i in range(64)]
        default = [shard_for_address(a, 8) for a in addresses]
        other = [shard_for_address(a, 8, seed=b"other") for a in addresses]
        assert default != other

    def test_reasonably_balanced(self):
        counts = [0] * 4
        for i in range(400):
            counts[shard_for_address(f"addr-{i}".encode(), 4)] += 1
        # Keyed BLAKE2b output: each shard should get a fair share.
        assert min(counts) > 50

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            shard_for_address(b"x", 0)
        with pytest.raises(ParameterError):
            shard_for_address(b"x", 4, seed=b"")
        with pytest.raises(ParameterError):
            shard_for_address(b"x", 4, seed=b"s" * 65)


class TestShardedIndex:
    def test_partition_covers_whole_index(self, deployment):
        _, _, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        assert sharded.num_shards == 4
        assert sharded.num_lists == built.secure_index.num_lists
        assert sharded.size_bytes() == built.secure_index.size_bytes()
        assert list(sharded.items()) == list(built.secure_index.items())

    def test_every_list_in_owning_shard(self, deployment):
        _, _, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        for shard_id, shard in enumerate(sharded.shards):
            for address, _ in shard.items():
                assert sharded.shard_id(address) == shard_id

    def test_lookup_routes_to_owner(self, deployment):
        scheme, key, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        for keyword in VOCAB[:8]:
            address = scheme.trapdoor(key, keyword).address
            assert sharded.lookup(address) == built.secure_index.lookup(
                address
            )
        assert sharded.lookup(b"\x00" * 20) is None

    def test_to_secure_index_round_trip(self, deployment):
        _, _, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 3)
        merged = sharded.to_secure_index()
        assert merged.serialize() == built.secure_index.serialize()

    def test_serialize_round_trip(self, deployment):
        _, _, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        restored = ShardedIndex.deserialize(sharded.serialize())
        assert restored.num_shards == 4
        assert restored.shard_seed == DEFAULT_SHARD_SEED
        assert list(restored.items()) == list(sharded.items())

    def test_from_shards_rejects_misplaced_list(self, deployment):
        _, _, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        # Reloading the shard files in the wrong order misroutes every
        # address; the validator must catch it.
        shuffled = tuple(reversed(sharded.shards))
        with pytest.raises(ParameterError, match="hashes to shard"):
            ShardedIndex.from_shards(shuffled)

    def test_from_shards_rejects_wrong_seed(self, deployment):
        _, _, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        with pytest.raises(ParameterError):
            ShardedIndex.from_shards(sharded.shards, shard_seed=b"wrong")

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(ParameterError):
            ShardedIndex.deserialize(b"not json")
        with pytest.raises(ParameterError):
            ShardedIndex.deserialize(b'{"kind": "something-else"}')

    def test_rejects_bad_shard_count(self, deployment):
        layout = EntryLayout(
            zero_pad_bytes=2, file_id_bytes=16, score_bytes=8
        )
        with pytest.raises(ParameterError):
            ShardedIndex(layout, 0)
        with pytest.raises(ParameterError):
            ShardedIndex.from_shards(())

    def test_single_shard_degenerates_to_plain_index(self, deployment):
        _, _, built, _ = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 1)
        assert sharded.shards[0].num_lists == built.secure_index.num_lists


class TestClusterServer:
    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_byte_identical_to_single_server(self, deployment, num_shards):
        scheme, key, built, blobs = deployment
        single = CloudServer(built.secure_index, blobs, can_rank=True)
        with ClusterServer(
            built.secure_index, blobs, can_rank=True, num_shards=num_shards
        ) as cluster:
            requests = [search_bytes(scheme, key, w) for w in VOCAB]
            expected = [single.handle(r) for r in requests]
            assert cluster.handle_many(requests) == expected
            # And via the sequential entry point too.
            assert [cluster.handle(r) for r in requests] == expected

    def test_accepts_presharded_index(self, deployment):
        scheme, key, built, blobs = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        with ClusterServer(sharded, blobs, can_rank=True) as cluster:
            assert cluster.num_shards == 4
            response = SearchResponse.from_bytes(
                cluster.handle(search_bytes(scheme, key, VOCAB[0]))
            )
            assert response.matches

    def test_rejects_mismatched_shard_count(self, deployment):
        _, _, built, blobs = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        with pytest.raises(ParameterError):
            ClusterServer(sharded, blobs, can_rank=True, num_shards=2)

    def test_rejects_unknown_request_kind(self, deployment):
        _, _, built, blobs = deployment
        with ClusterServer(
            built.secure_index, blobs, can_rank=True, num_shards=2
        ) as cluster:
            with pytest.raises(ProtocolError):
                cluster.handle(b'{"kind": "mystery"}')

    def test_cache_hits_aggregate_across_shards(self, deployment):
        scheme, key, built, blobs = deployment
        with ClusterServer(
            built.secure_index,
            blobs,
            can_rank=True,
            num_shards=4,
            cache_searches=True,
        ) as cluster:
            requests = [search_bytes(scheme, key, w) for w in VOCAB[:12]]
            cluster.handle_many(requests)
            assert cluster.cache_hits == 0
            cluster.handle_many(requests)
            assert cluster.cache_hits == 12

    def test_invalidate_cache_targets_owning_shard(self, deployment):
        scheme, key, built, blobs = deployment
        with ClusterServer(
            built.secure_index,
            blobs,
            can_rank=True,
            num_shards=4,
            cache_searches=True,
        ) as cluster:
            hot = search_bytes(scheme, key, VOCAB[0])
            cold = search_bytes(scheme, key, VOCAB[1])
            cluster.handle(hot)
            cluster.handle(cold)
            cluster.invalidate_cache(
                scheme.trapdoor(key, VOCAB[0]).address
            )
            cluster.handle(cold)
            assert cluster.cache_hits == 1  # cold survived
            cluster.handle(hot)
            assert cluster.cache_hits == 1  # hot was dropped
            cluster.invalidate_cache()
            cluster.handle(cold)
            assert cluster.cache_hits == 1

    def test_cache_capacity_split_across_shards(self, deployment):
        _, _, built, blobs = deployment
        with ClusterServer(
            built.secure_index,
            blobs,
            can_rank=True,
            num_shards=4,
            cache_searches=True,
            cache_capacity=8,
        ) as cluster:
            for server in cluster.servers:
                assert server.cache is not None
                assert server.cache.capacity == 2
        with pytest.raises(ParameterError):
            ClusterServer(
                built.secure_index,
                blobs,
                can_rank=True,
                cache_searches=True,
                cache_capacity=0,
            )

    def test_stats_aggregate_across_shards(self, deployment):
        scheme, key, built, blobs = deployment
        with ClusterServer(
            built.secure_index, blobs, can_rank=True, num_shards=4
        ) as cluster:
            requests = [search_bytes(scheme, key, w) for w in VOCAB]
            cluster.handle_many(requests)
            total = cluster.total_stats()
            assert total.round_trips == len(VOCAB)
            assert total.round_trips == sum(
                stats.round_trips for stats in cluster.shard_stats
            )
            assert total.bytes_to_server == sum(
                len(request) for request in requests
            )

    def test_search_pattern_merges_shard_logs(self, deployment):
        scheme, key, built, blobs = deployment
        with ClusterServer(
            built.secure_index, blobs, can_rank=True, num_shards=4
        ) as cluster:
            hot = search_bytes(scheme, key, VOCAB[0])
            cluster.handle(hot)
            cluster.handle(hot)
            cluster.handle(search_bytes(scheme, key, VOCAB[1]))
            pattern = cluster.search_pattern()
            address = scheme.trapdoor(key, VOCAB[0]).address
            assert pattern[address] == 2
            assert sum(pattern.values()) == 3

    def test_simulated_latency_requires_link_model(self, deployment):
        _, _, built, blobs = deployment
        with pytest.raises(ParameterError):
            ClusterServer(
                built.secure_index,
                blobs,
                can_rank=True,
                simulate_latency=True,
            )
        with ClusterServer(
            built.secure_index,
            blobs,
            can_rank=True,
            num_shards=2,
            link_model=LinkModel(rtt_seconds=0.0),
            simulate_latency=True,
        ) as cluster:
            assert cluster.num_shards == 2


class TestClusterUpdates:
    def test_remote_maintainer_through_cluster(self):
        """The owner's update driver works against a cluster unchanged."""
        scheme = EfficientRSSE(TEST_PARAMETERS)
        token = b"cluster-update-token"
        owner = DataOwner(scheme)
        documents = [
            Document(
                doc_id=f"doc{i}",
                title=f"doc {i}",
                text="alpha beta gamma " * (i + 1),
            )
            for i in range(6)
        ]
        outsourcing = owner.setup(documents)
        cluster = ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=4,
            cache_searches=True,
            update_token=token,
        )
        with cluster:
            maintainer = RemoteIndexMaintainer(
                owner, Channel(cluster.handle), token
            )
            key = owner.key
            before = SearchResponse.from_bytes(
                cluster.handle(search_bytes(scheme, key, "alpha", k=None))
            )
            report = maintainer.insert_document(
                Document(
                    doc_id="new-doc",
                    title="new doc",
                    text="alpha alpha delta",
                )
            )
            assert report.entries_remapped == 0
            after = SearchResponse.from_bytes(
                cluster.handle(search_bytes(scheme, key, "alpha", k=None))
            )
            ids = {m[0] for m in after.matches}
            assert "new-doc" in ids
            assert len(after.matches) == len(before.matches) + 1
            maintainer.remove_document("new-doc")
            final = SearchResponse.from_bytes(
                cluster.handle(search_bytes(scheme, key, "alpha", k=None))
            )
            assert {m[0] for m in final.matches} == {
                m[0] for m in before.matches
            }

    def test_parallel_update_dispatch_matches_serial(self):
        """workers>1 update dispatch converges to the same index state."""
        scheme = EfficientRSSE(TEST_PARAMETERS)
        token = b"par-token"
        documents = [
            Document(
                doc_id=f"doc{i}",
                title=f"doc {i}",
                text="alpha beta gamma delta epsilon " * (i + 1),
            )
            for i in range(4)
        ]
        new_doc = Document(
            doc_id="fresh",
            title="fresh",
            text="alpha beta gamma delta epsilon zeta",
        )
        snapshots = {}
        for workers in (1, 3):
            owner = DataOwner(scheme)
            outsourcing = owner.setup(documents)
            cluster = ClusterServer(
                outsourcing.secure_index,
                outsourcing.blob_store,
                can_rank=True,
                num_shards=3,
                update_token=token,
            )
            with cluster:
                maintainer = RemoteIndexMaintainer(
                    owner, Channel(cluster.handle), token
                )
                maintainer.insert_document(new_doc, workers=workers)
                maintainer.remove_document("doc2", workers=workers)
                snapshots[workers] = {
                    keyword: {
                        m[0]
                        for m in SearchResponse.from_bytes(
                            cluster.handle(
                                search_bytes(scheme, owner.key, keyword, k=None)
                            )
                        ).matches
                    }
                    for keyword in ("alpha", "zeta")
                }
        assert snapshots[1] == snapshots[3]
        assert "fresh" in snapshots[3]["alpha"]
        assert "doc2" not in snapshots[3]["alpha"]


class TestShardedPersistence:
    def test_save_load_round_trip(self, deployment, tmp_path):
        scheme, key, built, blobs = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 4)
        save_sharded_outsourcing(tmp_path, sharded, blobs, "rsse")
        loaded_index, loaded_blobs, kind = load_sharded_outsourcing(
            tmp_path
        )
        assert kind == "rsse"
        assert loaded_index.num_shards == 4
        assert list(loaded_index.items()) == list(sharded.items())
        assert len(loaded_blobs) == len(blobs)
        # A cluster over the reloaded shards answers identically.
        single = CloudServer(built.secure_index, blobs, can_rank=True)
        with ClusterServer(
            loaded_index, loaded_blobs, can_rank=True
        ) as cluster:
            for keyword in VOCAB[:6]:
                request = search_bytes(scheme, key, keyword)
                assert cluster.handle(request) == single.handle(request)

    def test_plain_loader_rejects_sharded_layout(
        self, deployment, tmp_path
    ):
        _, _, built, blobs = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 2)
        save_sharded_outsourcing(tmp_path, sharded, blobs, "rsse")
        with pytest.raises(ProtocolError, match="sharded"):
            load_outsourcing(tmp_path)

    def test_sharded_loader_rejects_plain_layout(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"scheme": "rsse"}')
        with pytest.raises(ProtocolError, match="unsharded"):
            load_sharded_outsourcing(tmp_path)

    def test_missing_shard_file_detected(self, deployment, tmp_path):
        _, _, built, blobs = deployment
        sharded = ShardedIndex.from_secure_index(built.secure_index, 3)
        save_sharded_outsourcing(tmp_path, sharded, blobs, "rsse")
        (tmp_path / "shards" / "shard-1.bin").unlink()
        with pytest.raises(ProtocolError, match="missing shard"):
            load_sharded_outsourcing(tmp_path)
