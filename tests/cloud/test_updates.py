"""Unit + integration tests for the over-the-wire update protocol."""

import pytest

from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.cloud.updates import (
    AckResponse,
    PutBlobRequest,
    RemoteIndexMaintainer,
    RemoveBlobRequest,
    UpdateListRequest,
)
from repro.core import BasicRankedSSE, EfficientRSSE, TEST_PARAMETERS
from repro.corpus import generate_corpus
from repro.corpus.loader import Document
from repro.crypto import generate_key
from repro.errors import ParameterError, ProtocolError

TOKEN = b"owner-update-token"


@pytest.fixture()
def world():
    documents = generate_corpus(20, seed=81, vocabulary_size=200)
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents[:15])
    server = CloudServer(
        outsourcing.secure_index,
        outsourcing.blob_store,
        can_rank=True,
        cache_searches=True,
        update_token=TOKEN,
    )
    channel = Channel(server.handle)
    maintainer = RemoteIndexMaintainer(owner, channel, TOKEN)
    user = DataUser(
        scheme, owner.authorize_user(), Channel(server.handle),
        owner.analyzer,
    )
    return documents, scheme, owner, server, maintainer, user


class TestMessageEncodings:
    def test_update_list_roundtrip(self):
        request = UpdateListRequest(
            token=TOKEN, address=b"\x01\x02", entries=(b"\xaa", b"\xbb"),
            mode="append",
        )
        assert UpdateListRequest.from_bytes(request.to_bytes()) == request

    def test_put_blob_roundtrip(self):
        request = PutBlobRequest(token=TOKEN, file_id="d1", blob=b"\x00\x01")
        assert PutBlobRequest.from_bytes(request.to_bytes()) == request

    def test_remove_blob_roundtrip(self):
        request = RemoveBlobRequest(token=TOKEN, file_id="d1")
        assert RemoveBlobRequest.from_bytes(request.to_bytes()) == request

    def test_ack_roundtrip(self):
        ack = AckResponse(ok=False, detail="nope")
        assert AckResponse.from_bytes(ack.to_bytes()) == ack

    def test_invalid_mode_rejected(self):
        with pytest.raises(ParameterError):
            UpdateListRequest(
                token=TOKEN, address=b"a", entries=(), mode="upsert"
            )


class TestRemoteInsert:
    def test_inserted_document_searchable(self, world):
        documents, _, _, _, maintainer, user = world
        new_doc = documents[15]
        report = maintainer.insert_document(new_doc)
        assert report.entries_remapped == 0
        assert report.entries_written == report.lists_touched > 0
        hits = user.search_ranked_topk("network", 100)
        assert new_doc.doc_id in {hit.file_id for hit in hits}

    def test_inserted_blob_decrypts(self, world):
        documents, _, _, _, maintainer, user = world
        new_doc = documents[16]
        maintainer.insert_document(new_doc)
        hits = user.search_ranked_topk("network", 100)
        text = next(
            hit.text for hit in hits if hit.file_id == new_doc.doc_id
        )
        assert text == new_doc.text

    def test_cache_invalidated_by_update(self, world):
        documents, _, _, server, maintainer, user = world
        user.search_ranked_topk("network", 5)   # warm
        user.search_ranked_topk("network", 5)   # hit
        assert server.cache_hits == 1
        maintainer.insert_document(documents[17])
        before = {h.file_id for h in user.search_ranked_topk("network", 100)}
        assert documents[17].doc_id in before  # fresh decryption, not stale


class TestRemoteRemove:
    def test_removed_document_disappears(self, world):
        documents, _, _, _, maintainer, user = world
        victim = documents[0].doc_id
        report = maintainer.remove_document(victim)
        assert report.entries_written == 0
        hits = user.search_ranked_topk("network", 100)
        assert victim not in {hit.file_id for hit in hits}

    def test_remove_unknown_rejected(self, world):
        _, _, _, _, maintainer, _ = world
        with pytest.raises(ParameterError):
            maintainer.remove_document("ghost")


class TestWriteAuthorization:
    def test_wrong_token_rejected(self, world):
        _, _, _, server, _, _ = world
        request = PutBlobRequest(
            token=b"wrong-token-00000", file_id="evil", blob=b"x"
        )
        with pytest.raises(ProtocolError):
            server.handle(request.to_bytes())

    def test_server_without_token_rejects_all_updates(self):
        from repro.cloud.storage import BlobStore

        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        outsourcing = owner.setup(
            generate_corpus(3, seed=2, vocabulary_size=100)
        )
        read_only = CloudServer(
            outsourcing.secure_index, BlobStore(), can_rank=True
        )
        request = PutBlobRequest(token=TOKEN, file_id="d", blob=b"x")
        with pytest.raises(ProtocolError):
            read_only.handle(request.to_bytes())

    def test_replace_missing_list_rejected(self, world):
        _, _, _, server, _, _ = world
        request = UpdateListRequest(
            token=TOKEN, address=b"\xff" * 20, entries=(), mode="replace"
        )
        with pytest.raises(ProtocolError):
            server.handle(request.to_bytes())

    def test_search_trapdoor_grants_no_write(self, world):
        """A user's search credentials cannot push updates."""
        _, scheme, owner, server, _, _ = world
        trapdoor = scheme.trapdoor(owner.key, "network")
        request = UpdateListRequest(
            token=trapdoor.list_key,  # best key material a user holds
            address=trapdoor.address,
            entries=(),
            mode="append",
        )
        with pytest.raises(ProtocolError):
            server.handle(request.to_bytes())


class TestMaintainerConstruction:
    def test_requires_efficient_scheme(self):
        owner = DataOwner(BasicRankedSSE(TEST_PARAMETERS))
        owner.setup(generate_corpus(3, seed=3, vocabulary_size=100))
        with pytest.raises(ParameterError):
            RemoteIndexMaintainer(owner, Channel(lambda b: b), TOKEN)

    def test_requires_setup_first(self):
        owner = DataOwner(EfficientRSSE(TEST_PARAMETERS))
        with pytest.raises(ParameterError):
            RemoteIndexMaintainer(owner, Channel(lambda b: b), TOKEN)

    def test_requires_token(self, world):
        _, _, owner, _, _, _ = world
        with pytest.raises(ParameterError):
            RemoteIndexMaintainer(owner, Channel(lambda b: b), b"")
