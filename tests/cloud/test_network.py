"""Unit tests for the accounted channel and link model."""

import threading

import pytest

from repro.cloud.network import Channel, ChannelSnapshot, ChannelStats, LinkModel
from repro.errors import ParameterError, ProtocolError


class TestChannel:
    def test_delivers_request_and_response(self):
        channel = Channel(lambda request: request.upper())
        assert channel.call(b"ping") == b"PING"

    def test_counts_round_trips(self):
        channel = Channel(lambda request: b"ok")
        for _ in range(3):
            channel.call(b"x")
        assert channel.stats.round_trips == 3

    def test_counts_bytes_both_directions(self):
        channel = Channel(lambda request: b"12345")
        channel.call(b"abc")
        assert channel.stats.bytes_to_server == 3
        assert channel.stats.bytes_to_user == 5
        assert channel.stats.total_bytes == 8

    def test_per_message_sizes_recorded(self):
        channel = Channel(lambda request: b"r" * len(request))
        channel.call(b"a")
        channel.call(b"bb")
        assert channel.stats.requests == [1, 2]
        assert channel.stats.responses == [1, 2]

    def test_reset(self):
        channel = Channel(lambda request: b"ok")
        channel.call(b"x")
        channel.stats.reset()
        assert channel.stats.round_trips == 0
        assert channel.stats.total_bytes == 0
        assert channel.stats.requests == []

    def test_failed_call_not_counted_as_response_traffic(self):
        """A raising handler charges the request, never the response."""

        def handler(request: bytes) -> bytes:
            raise ProtocolError("boom")

        channel = Channel(handler)
        with pytest.raises(ProtocolError):
            channel.call(b"abc")
        assert channel.stats.round_trips == 1
        assert channel.stats.bytes_to_server == 3
        assert channel.stats.bytes_to_user == 0
        assert channel.stats.responses == []
        assert channel.stats.failed_calls == 1

    def test_failure_then_success_accounting(self):
        calls = iter([True, False])

        def handler(request: bytes) -> bytes:
            if next(calls):
                raise ProtocolError("first call fails")
            return b"okay!"

        channel = Channel(handler)
        with pytest.raises(ProtocolError):
            channel.call(b"x")
        assert channel.call(b"x") == b"okay!"
        assert channel.stats.round_trips == 2
        assert channel.stats.failed_calls == 1
        assert channel.stats.bytes_to_user == 5

    def test_reset_clears_failure_counter(self):
        channel = Channel(lambda request: (_ for _ in ()).throw(
            ProtocolError("always")
        ))
        with pytest.raises(ProtocolError):
            channel.call(b"x")
        channel.stats.reset()
        assert channel.stats.failed_calls == 0


class TestChannelStatsSnapshot:
    def test_snapshot_is_immutable_copy(self):
        channel = Channel(lambda request: b"ok")
        channel.call(b"abc")
        view = channel.stats.snapshot()
        assert isinstance(view, ChannelSnapshot)
        assert view.round_trips == 1
        assert view.bytes_to_server == 3
        assert view.requests == (3,)
        with pytest.raises(AttributeError):
            view.round_trips = 99  # type: ignore[misc]
        channel.call(b"defg")
        assert view.round_trips == 1  # unaffected by later traffic
        assert view.snapshot() is view

    def test_snapshot_consistent_under_concurrent_calls(self):
        """Sampled snapshots are never torn: counts always pair up."""
        channel = Channel(lambda request: b"rr")
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                channel.call(b"q")

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(200):
                view = channel.stats.snapshot()
                assert view.round_trips >= len(view.responses)
                assert view.bytes_to_server == sum(view.requests)
                assert view.bytes_to_user == sum(view.responses)
                assert len(view.requests) == view.round_trips
        finally:
            stop.set()
            for worker in workers:
                worker.join()

    def test_merged_includes_failed_calls(self):
        first = ChannelStats(round_trips=2, failed_calls=1)
        second = ChannelStats(round_trips=3, failed_calls=2)
        total = ChannelStats.merged([first, second])
        assert total.round_trips == 5
        assert total.failed_calls == 3

    def test_merged_accepts_snapshots(self):
        channel = Channel(lambda request: b"ok")
        channel.call(b"ab")
        total = ChannelStats.merged(
            [channel.stats.snapshot(), channel.stats]
        )
        assert total.round_trips == 2
        assert total.bytes_to_server == 4


class TestLinkModel:
    def test_estimate_combines_rtt_and_bandwidth(self):
        model = LinkModel(rtt_seconds=0.1,
                          bandwidth_bytes_per_second=1000.0)
        stats = ChannelStats(round_trips=2, bytes_to_server=500,
                             bytes_to_user=500)
        assert model.estimate_seconds(stats) == pytest.approx(0.2 + 1.0)

    def test_zero_rtt_allowed(self):
        model = LinkModel(rtt_seconds=0.0)
        stats = ChannelStats(round_trips=5)
        assert model.estimate_seconds(stats) == 0.0

    def test_rejects_negative_rtt(self):
        with pytest.raises(ParameterError):
            LinkModel(rtt_seconds=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ParameterError):
            LinkModel(bandwidth_bytes_per_second=0.0)
