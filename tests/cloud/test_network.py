"""Unit tests for the accounted channel and link model."""

import pytest

from repro.cloud.network import Channel, ChannelStats, LinkModel
from repro.errors import ParameterError


class TestChannel:
    def test_delivers_request_and_response(self):
        channel = Channel(lambda request: request.upper())
        assert channel.call(b"ping") == b"PING"

    def test_counts_round_trips(self):
        channel = Channel(lambda request: b"ok")
        for _ in range(3):
            channel.call(b"x")
        assert channel.stats.round_trips == 3

    def test_counts_bytes_both_directions(self):
        channel = Channel(lambda request: b"12345")
        channel.call(b"abc")
        assert channel.stats.bytes_to_server == 3
        assert channel.stats.bytes_to_user == 5
        assert channel.stats.total_bytes == 8

    def test_per_message_sizes_recorded(self):
        channel = Channel(lambda request: b"r" * len(request))
        channel.call(b"a")
        channel.call(b"bb")
        assert channel.stats.requests == [1, 2]
        assert channel.stats.responses == [1, 2]

    def test_reset(self):
        channel = Channel(lambda request: b"ok")
        channel.call(b"x")
        channel.stats.reset()
        assert channel.stats.round_trips == 0
        assert channel.stats.total_bytes == 0
        assert channel.stats.requests == []


class TestLinkModel:
    def test_estimate_combines_rtt_and_bandwidth(self):
        model = LinkModel(rtt_seconds=0.1,
                          bandwidth_bytes_per_second=1000.0)
        stats = ChannelStats(round_trips=2, bytes_to_server=500,
                             bytes_to_user=500)
        assert model.estimate_seconds(stats) == pytest.approx(0.2 + 1.0)

    def test_zero_rtt_allowed(self):
        model = LinkModel(rtt_seconds=0.0)
        stats = ChannelStats(round_trips=5)
        assert model.estimate_seconds(stats) == 0.0

    def test_rejects_negative_rtt(self):
        with pytest.raises(ParameterError):
            LinkModel(rtt_seconds=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ParameterError):
            LinkModel(bandwidth_bytes_per_second=0.0)
