"""Unit tests for the server's search-pattern cache."""

import pytest

from repro.cloud.protocol import SearchRequest, SearchResponse
from repro.cloud.server import CloudServer
from repro.cloud.storage import BlobStore
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.ir.inverted_index import InvertedIndex


@pytest.fixture()
def deployment():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 3 + ["pad"] * 2)
    index.add_document("d2", ["net"] * 1 + ["pad"] * 4)
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    blobs.put("d1", b"blob1")
    blobs.put("d2", b"blob2")
    return scheme, key, built, blobs


def search_bytes(scheme, key, keyword="net", k=2):
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(), top_k=k
    ).to_bytes()


class TestCacheBehaviour:
    def test_repeat_query_hits_cache(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index, blobs, can_rank=True, cache_searches=True
        )
        request = search_bytes(scheme, key)
        first = SearchResponse.from_bytes(server.handle(request))
        second = SearchResponse.from_bytes(server.handle(request))
        assert server.cache_hits == 1
        assert first == second

    def test_distinct_keywords_not_conflated(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index, blobs, can_rank=True, cache_searches=True
        )
        net = SearchResponse.from_bytes(
            server.handle(search_bytes(scheme, key, "net"))
        )
        pad = SearchResponse.from_bytes(
            server.handle(search_bytes(scheme, key, "pad"))
        )
        assert server.cache_hits == 0
        assert {m[0] for m in net.matches} != set() and net != pad

    def test_cache_disabled_by_default(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(built.secure_index, blobs, can_rank=True)
        request = search_bytes(scheme, key)
        server.handle(request)
        server.handle(request)
        assert server.cache_hits == 0

    def test_invalidation_forces_redecryption(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index, blobs, can_rank=True, cache_searches=True
        )
        request = search_bytes(scheme, key)
        server.handle(request)
        server.invalidate_cache()
        server.handle(request)
        assert server.cache_hits == 0
        server.handle(request)
        assert server.cache_hits == 1

    def test_targeted_invalidation(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index, blobs, can_rank=True, cache_searches=True
        )
        net_trapdoor = scheme.trapdoor(key, "net")
        server.handle(search_bytes(scheme, key, "net"))
        server.handle(search_bytes(scheme, key, "pad"))
        server.invalidate_cache(net_trapdoor.address)
        server.handle(search_bytes(scheme, key, "pad"))
        assert server.cache_hits == 1  # pad still cached
        server.handle(search_bytes(scheme, key, "net"))
        assert server.cache_hits == 1  # net was re-decrypted

    def test_cache_sees_updates_after_invalidation(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index, blobs, can_rank=True, cache_searches=True
        )
        request = search_bytes(scheme, key, "net", k=5)
        before = SearchResponse.from_bytes(server.handle(request))
        # Owner removes d2's entries from the 'net' list.
        trapdoor = scheme.trapdoor(key, "net")
        entries = built.secure_index.lookup(trapdoor.address)
        built.secure_index.replace_list(trapdoor.address, entries[:1])
        server.invalidate_cache(trapdoor.address)
        after = SearchResponse.from_bytes(server.handle(request))
        assert len(after.matches) < len(before.matches)

    def test_unknown_keyword_cached_as_empty(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index, blobs, can_rank=True, cache_searches=True
        )
        request = search_bytes(scheme, key, "ghost")
        first = SearchResponse.from_bytes(server.handle(request))
        second = SearchResponse.from_bytes(server.handle(request))
        assert first.matches == second.matches == ()
        assert server.cache_hits == 1


class TestBoundedCache:
    """The decrypted-list cache is a bounded LRU, not an unbounded dict."""

    def test_capacity_is_enforced(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index,
            blobs,
            can_rank=True,
            cache_searches=True,
            cache_capacity=1,
        )
        server.handle(search_bytes(scheme, key, "net"))
        server.handle(search_bytes(scheme, key, "pad"))  # evicts net
        assert len(server.cache) == 1
        server.handle(search_bytes(scheme, key, "net"))  # re-decrypted
        assert server.cache_hits == 0
        assert server.cache.evictions == 2

    def test_lru_keeps_the_hot_keyword(self, deployment):
        scheme, key, built, blobs = deployment
        server = CloudServer(
            built.secure_index,
            blobs,
            can_rank=True,
            cache_searches=True,
            cache_capacity=2,
        )
        server.handle(search_bytes(scheme, key, "net"))
        server.handle(search_bytes(scheme, key, "pad"))
        server.handle(search_bytes(scheme, key, "net"))  # net is now MRU
        server.handle(search_bytes(scheme, key, "ghost"))  # evicts pad
        server.handle(search_bytes(scheme, key, "net"))
        assert server.cache_hits == 2  # both repeat 'net' queries hit
        net_address = scheme.trapdoor(key, "net").address
        pad_address = scheme.trapdoor(key, "pad").address
        assert net_address in server.cache
        assert pad_address not in server.cache

    def test_eviction_does_not_change_responses(self, deployment):
        scheme, key, built, blobs = deployment
        bounded = CloudServer(
            built.secure_index,
            blobs,
            can_rank=True,
            cache_searches=True,
            cache_capacity=1,
        )
        uncached = CloudServer(built.secure_index, blobs, can_rank=True)
        for keyword in ("net", "pad", "net", "ghost", "pad", "net"):
            request = search_bytes(scheme, key, keyword)
            assert bounded.handle(request) == uncached.handle(request)

    def test_cache_property_is_none_when_disabled(self, deployment):
        _, _, built, blobs = deployment
        server = CloudServer(built.secure_index, blobs, can_rank=True)
        assert server.cache is None
