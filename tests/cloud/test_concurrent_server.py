"""Correctness-under-concurrency suite for the serving layer.

The properties under test:

* **Equivalence** — concurrent searches through the sharded cluster
  return byte-identical responses to a sequential single
  :class:`CloudServer` over the same index.
* **Atomicity** — with searcher threads racing an owner update thread,
  every response corresponds to a *pre-* or *post-update* snapshot of
  the collection: a response never shows a torn state (a file in the
  match list whose blob is gone, half of an update, a crash).
* **Cache sanity** — the bounded LRU stays within capacity and its
  counters add up under concurrent hits.

These tests are deterministic in their assertions (no dependence on
dict/set iteration order or hash seeding), so they pass under any
``PYTHONHASHSEED`` and with test randomization disabled
(``pytest -p no:randomly``).
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cloud.cluster import ClusterServer
from repro.cloud.network import Channel
from repro.cloud.owner import DataOwner
from repro.cloud.protocol import SearchRequest, SearchResponse
from repro.cloud.server import CloudServer
from repro.cloud.updates import RemoteIndexMaintainer
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.corpus.loader import Document
from repro.ir.inverted_index import InvertedIndex
from repro.cloud.storage import BlobStore

SEARCHER_THREADS = 8
UPDATE_CYCLES = 12


def search_bytes(scheme, key, keyword, k=None):
    return SearchRequest(
        trapdoor_bytes=scheme.trapdoor(key, keyword).serialize(), top_k=k
    ).to_bytes()


@pytest.fixture(scope="module")
def static_deployment():
    """A read-only deployment for the equivalence tests."""
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = InvertedIndex()
    rng = random.Random(99)
    vocab = [f"kw{i:02d}" for i in range(24)]
    for doc in range(18):
        index.add_document(
            f"doc{doc}", [rng.choice(vocab) for _ in range(36)]
        )
    built = scheme.build_index(key, index)
    blobs = BlobStore()
    for doc in range(18):
        blobs.put(f"doc{doc}", b"blob-" + str(doc).encode())
    return scheme, key, built, blobs, vocab


class TestConcurrentEquivalence:
    def test_cluster_matches_single_server_under_load(
        self, static_deployment
    ):
        scheme, key, built, blobs, vocab = static_deployment
        single = CloudServer(built.secure_index, blobs, can_rank=True)
        requests = [
            search_bytes(scheme, key, keyword, k=5)
            for keyword in vocab * 4
        ]
        expected = [single.handle(request) for request in requests]
        with ClusterServer(
            built.secure_index,
            blobs,
            can_rank=True,
            num_shards=4,
            cache_searches=True,
            max_workers=SEARCHER_THREADS,
        ) as cluster:
            assert cluster.handle_many(requests) == expected

    def test_many_client_threads_calling_handle_directly(
        self, static_deployment
    ):
        scheme, key, built, blobs, vocab = static_deployment
        single = CloudServer(built.secure_index, blobs, can_rank=True)
        requests = [
            search_bytes(scheme, key, keyword, k=3)
            for keyword in vocab * 3
        ]
        expected = [single.handle(request) for request in requests]
        with ClusterServer(
            built.secure_index, blobs, can_rank=True, num_shards=4
        ) as cluster:
            with ThreadPoolExecutor(SEARCHER_THREADS) as pool:
                actual = list(pool.map(cluster.handle, requests))
        assert actual == expected

    def test_single_server_is_thread_safe(self, static_deployment):
        """CloudServer serializes concurrent callers without corruption."""
        scheme, key, built, blobs, vocab = static_deployment
        server = CloudServer(
            built.secure_index, blobs, can_rank=True, cache_searches=True
        )
        requests = [
            search_bytes(scheme, key, keyword, k=4) for keyword in vocab
        ]
        expected = [server.handle(request) for request in requests]
        with ThreadPoolExecutor(SEARCHER_THREADS) as pool:
            for _ in range(3):
                actual = list(pool.map(server.handle, requests))
                assert actual == expected


class TestSearchersVersusOwner:
    def test_every_response_is_a_consistent_snapshot(self):
        """N searchers race an updating owner; no torn responses.

        The owner repeatedly inserts a fresh document containing the
        hot keyword and then removes it again.  At any instant the
        collection is BASE or BASE + {one dynamic doc}; every search
        response must equal one of those snapshots exactly — matches
        and file payloads agreeing with each other — regardless of how
        the response interleaves with the update messages.
        """
        scheme = EfficientRSSE(TEST_PARAMETERS)
        token = b"race-token"
        owner = DataOwner(scheme)
        documents = [
            Document(
                doc_id=f"base{i}",
                title=f"base {i}",
                text="hot cold warm " * (i + 2),
            )
            for i in range(5)
        ]
        outsourcing = owner.setup(documents)
        base_ids = {f"base{i}" for i in range(5)}
        dynamic_ids = {f"dyn{cycle}" for cycle in range(UPDATE_CYCLES)}
        key = owner.key
        request = search_bytes(scheme, key, "hot")

        cluster = ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=4,
            cache_searches=True,
            update_token=token,
        )
        maintainer = RemoteIndexMaintainer(
            owner, Channel(cluster.handle), token
        )

        stop = threading.Event()
        failures: list[str] = []
        responses_seen = [0]
        count_lock = threading.Lock()

        def searcher() -> None:
            while not stop.is_set():
                response = SearchResponse.from_bytes(
                    cluster.handle(request)
                )
                match_ids = [m[0] for m in response.matches]
                file_ids = [f[0] for f in response.files]
                extra = set(match_ids) - base_ids
                if match_ids != file_ids:
                    failures.append(
                        f"matches/files disagree: {match_ids} vs {file_ids}"
                    )
                if len(match_ids) != len(set(match_ids)):
                    failures.append(f"duplicate matches: {match_ids}")
                if not base_ids <= set(match_ids):
                    failures.append(f"base doc missing: {match_ids}")
                if len(extra) > 1 or not extra <= dynamic_ids:
                    failures.append(f"impossible snapshot: {match_ids}")
                with count_lock:
                    responses_seen[0] += 1

        threads = [
            threading.Thread(target=searcher)
            for _ in range(SEARCHER_THREADS)
        ]
        with cluster:
            for thread in threads:
                thread.start()
            try:
                for cycle in range(UPDATE_CYCLES):
                    maintainer.insert_document(
                        Document(
                            doc_id=f"dyn{cycle}",
                            title=f"dyn {cycle}",
                            text="hot hot hot",
                        )
                    )
                    maintainer.remove_document(f"dyn{cycle}")
            finally:
                stop.set()
                for thread in threads:
                    thread.join()

        assert not failures, failures[:5]
        assert responses_seen[0] > 0
        # After the dust settles: exactly the base collection remains.
        final = SearchResponse.from_bytes(cluster.handle(request))
        assert {m[0] for m in final.matches} == base_ids

    @pytest.mark.slow
    def test_extended_stress_with_simulated_latency(self):
        """Longer race with per-call latency to widen interleavings.

        Same invariant as the snapshot test above, but with simulated
        per-shard service latency (sleeps inside the shard channel give
        the scheduler many more chances to interleave searchers with
        the owner's update messages) and more update cycles.  Excluded
        from the CI fast lane via the ``slow`` marker.
        """
        from repro.cloud.network import LinkModel

        scheme = EfficientRSSE(TEST_PARAMETERS)
        token = b"stress-token"
        owner = DataOwner(scheme)
        outsourcing = owner.setup(
            [
                Document(
                    doc_id=f"base{i}",
                    title=f"base {i}",
                    text="hot cold " * (i + 2),
                )
                for i in range(4)
            ]
        )
        base_ids = {f"base{i}" for i in range(4)}
        cycles = 30
        dynamic_ids = {f"dyn{cycle}" for cycle in range(cycles)}
        key = owner.key
        request = search_bytes(scheme, key, "hot")
        cluster = ClusterServer(
            outsourcing.secure_index,
            outsourcing.blob_store,
            can_rank=True,
            num_shards=4,
            cache_searches=True,
            update_token=token,
            link_model=LinkModel(rtt_seconds=0.001),
            simulate_latency=True,
        )
        maintainer = RemoteIndexMaintainer(
            owner, Channel(cluster.handle), token
        )
        stop = threading.Event()
        failures: list[str] = []

        def searcher() -> None:
            while not stop.is_set():
                response = SearchResponse.from_bytes(
                    cluster.handle(request)
                )
                ids = [m[0] for m in response.matches]
                extra = set(ids) - base_ids
                if (
                    [f[0] for f in response.files] != ids
                    or not base_ids <= set(ids)
                    or len(extra) > 1
                    or not extra <= dynamic_ids
                ):
                    failures.append(f"inconsistent snapshot: {ids}")

        threads = [
            threading.Thread(target=searcher) for _ in range(12)
        ]
        with cluster:
            for thread in threads:
                thread.start()
            try:
                for cycle in range(cycles):
                    maintainer.insert_document(
                        Document(
                            doc_id=f"dyn{cycle}",
                            title=f"dyn {cycle}",
                            text="hot hot",
                        )
                    )
                    maintainer.remove_document(f"dyn{cycle}")
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
        assert not failures, failures[:5]

    def test_cache_counters_and_bound_hold_under_concurrency(
        self, static_deployment
    ):
        scheme, key, built, blobs, vocab = static_deployment
        with ClusterServer(
            built.secure_index,
            blobs,
            can_rank=True,
            num_shards=2,
            cache_searches=True,
            cache_capacity=6,
        ) as cluster:
            requests = [
                search_bytes(scheme, key, keyword, k=2)
                for keyword in vocab * 5
            ]
            cluster.handle_many(requests)
            for server in cluster.servers:
                cache = server.cache
                assert cache is not None
                assert len(cache) <= cache.capacity
                assert cache.hits + cache.misses >= len(cache)
            assert cluster.cache_hits >= 0
