"""Unit tests for complete-subtree broadcast encryption."""

import pytest

from repro.cloud.broadcast import BroadcastEncryption
from repro.errors import CryptoError, ParameterError

KEY = b"bcast-master-key"


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        for capacity in (0, 1, 3, 6, 100):
            with pytest.raises(ParameterError):
                BroadcastEncryption(KEY, capacity)

    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            BroadcastEncryption(b"", 8)

    def test_capacity_property(self):
        assert BroadcastEncryption(KEY, 32).capacity == 32


class TestKeyIssuing:
    def test_path_length_is_log_capacity_plus_one(self):
        be = BroadcastEncryption(KEY, 16)
        keys = be.user_key_set(5)
        assert len(keys.node_keys) == 5  # leaf + 3 internal + root

    def test_distinct_users_share_only_ancestors(self):
        be = BroadcastEncryption(KEY, 8)
        a = dict(be.user_key_set(0).node_keys)
        b = dict(be.user_key_set(1).node_keys)
        shared = set(a) & set(b)
        # Siblings share all ancestors but not their leaves.
        assert len(shared) == 3
        for node in shared:
            assert a[node] == b[node]

    def test_rejects_out_of_range_slot(self):
        be = BroadcastEncryption(KEY, 8)
        with pytest.raises(ParameterError):
            be.user_key_set(8)
        with pytest.raises(ParameterError):
            be.user_key_set(-1)


class TestBroadcast:
    def test_no_revocations_single_ciphertext(self):
        be = BroadcastEncryption(KEY, 16)
        assert be.encrypt(b"m").num_ciphertexts == 1

    def test_everyone_decrypts_when_none_revoked(self):
        be = BroadcastEncryption(KEY, 8)
        ciphertext = be.encrypt(b"secret")
        for slot in range(8):
            assert (
                BroadcastEncryption.decrypt(be.user_key_set(slot), ciphertext)
                == b"secret"
            )

    def test_revoked_users_cannot_decrypt(self):
        be = BroadcastEncryption(KEY, 16)
        revoked = {2, 9, 10}
        ciphertext = be.encrypt(b"secret", revoked)
        for slot in range(16):
            keys = be.user_key_set(slot)
            if slot in revoked:
                with pytest.raises(CryptoError):
                    BroadcastEncryption.decrypt(keys, ciphertext)
            else:
                assert (
                    BroadcastEncryption.decrypt(keys, ciphertext) == b"secret"
                )

    def test_cover_size_bound(self):
        # Complete-subtree bound: |cover| <= r * log2(N/r) roughly; for
        # a single revocation it is exactly log2(N).
        be = BroadcastEncryption(KEY, 64)
        assert be.encrypt(b"m", {0}).num_ciphertexts == 6

    def test_all_revoked_empty_broadcast(self):
        be = BroadcastEncryption(KEY, 4)
        ciphertext = be.encrypt(b"m", {0, 1, 2, 3})
        assert ciphertext.num_ciphertexts == 0
        with pytest.raises(CryptoError):
            BroadcastEncryption.decrypt(be.user_key_set(0), ciphertext)

    def test_adjacent_revocations_compress_cover(self):
        be = BroadcastEncryption(KEY, 16)
        adjacent = be.encrypt(b"m", {0, 1}).num_ciphertexts
        spread = be.encrypt(b"m", {0, 8}).num_ciphertexts
        assert adjacent < spread

    def test_revoked_validation(self):
        be = BroadcastEncryption(KEY, 8)
        with pytest.raises(ParameterError):
            be.encrypt(b"m", {99})
