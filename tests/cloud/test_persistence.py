"""Unit tests for on-disk deployment persistence."""

import pytest

from repro.cloud.owner import DataOwner, UserCredentials
from repro.cloud.persistence import (
    load_credentials,
    load_key,
    load_outsourcing,
    pack_deployment,
    save_credentials,
    save_key,
    save_outsourcing,
)
from repro.cloud.store import PackedStore
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.core.secure_index import SecureIndex
from repro.corpus import generate_corpus
from repro.crypto import generate_key, keygen
from repro.errors import ProtocolError


@pytest.fixture(scope="module")
def outsourcing():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    documents = generate_corpus(10, seed=61, vocabulary_size=150)
    return owner, owner.setup(documents)


class TestOutsourcingRoundtrip:
    def test_index_and_blobs_survive(self, outsourcing, tmp_path):
        _, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse")
        restored, kind = load_outsourcing(tmp_path / "dep")
        assert kind == "rsse"
        assert restored.secure_index.num_lists == original.secure_index.num_lists
        assert restored.secure_index.size_bytes() == original.secure_index.size_bytes()
        assert len(restored.blob_store) == len(original.blob_store)
        for doc_id in original.blob_store.ids():
            assert restored.blob_store.get(doc_id) == original.blob_store.get(
                doc_id
            )

    def test_search_works_after_restore(self, outsourcing, tmp_path):
        owner, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse")
        restored, _ = load_outsourcing(tmp_path / "dep")
        scheme = EfficientRSSE(TEST_PARAMETERS)
        trapdoor = scheme.trapdoor(owner.key, "network")
        before = scheme.search_ranked(original.secure_index, trapdoor)
        after = scheme.search_ranked(restored.secure_index, trapdoor)
        assert [r.file_id for r in before] == [r.file_id for r in after]

    def test_unusual_doc_ids_roundtrip(self, tmp_path):
        from repro.cloud.owner import Outsourcing
        from repro.cloud.storage import BlobStore
        from repro.core.secure_index import EntryLayout, SecureIndex

        blob_store = BlobStore()
        blob_store.put("weird/../id with spaces", b"payload")
        outsourcing = Outsourcing(
            secure_index=SecureIndex(
                EntryLayout(zero_pad_bytes=1, file_id_bytes=4, score_bytes=1)
            ),
            blob_store=blob_store,
        )
        save_outsourcing(tmp_path / "dep", outsourcing, "rsse")
        restored, _ = load_outsourcing(tmp_path / "dep")
        assert restored.blob_store.get("weird/../id with spaces") == b"payload"

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ProtocolError):
            load_outsourcing(tmp_path)

    def test_corrupt_manifest(self, outsourcing, tmp_path):
        _, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse")
        (tmp_path / "dep" / "manifest.json").write_text("{not json")
        with pytest.raises(ProtocolError):
            load_outsourcing(tmp_path / "dep")

    def test_missing_blob_detected(self, outsourcing, tmp_path):
        _, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse")
        blob = next((tmp_path / "dep" / "blobs").iterdir())
        blob.unlink()
        with pytest.raises(ProtocolError):
            load_outsourcing(tmp_path / "dep")


class TestPackedStoreDeployments:
    def search_ids(self, owner, index, keyword="network"):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        trapdoor = scheme.trapdoor(owner.key, keyword)
        return [
            r.file_id for r in scheme.search_ranked(index, trapdoor)
        ]

    def test_packed_roundtrip_loads_mmap_store(self, outsourcing, tmp_path):
        owner, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse", store="packed")
        restored, kind = load_outsourcing(tmp_path / "dep")
        assert kind == "rsse"
        assert isinstance(restored.secure_index, PackedStore)
        assert self.search_ids(owner, restored.secure_index) == (
            self.search_ids(owner, original.secure_index)
        )
        restored.secure_index.close()

    def test_dict_view_of_packed_deployment(self, outsourcing, tmp_path):
        owner, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse", store="packed")
        restored, _ = load_outsourcing(tmp_path / "dep", store="dict")
        assert isinstance(restored.secure_index, SecureIndex)
        assert dict(restored.secure_index.items()) == dict(
            original.secure_index.items()
        )

    def test_mmap_view_of_json_deployment_rejected(
        self, outsourcing, tmp_path
    ):
        _, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse", store="json")
        with pytest.raises(ProtocolError, match="repack"):
            load_outsourcing(tmp_path / "dep", store="mmap")

    def test_invalid_store_values_rejected(self, outsourcing, tmp_path):
        _, original = outsourcing
        with pytest.raises(ProtocolError, match="sqlite"):
            save_outsourcing(
                tmp_path / "dep", original, "rsse", store="sqlite"
            )
        save_outsourcing(tmp_path / "dep", original, "rsse")
        with pytest.raises(ProtocolError, match="lazy"):
            load_outsourcing(tmp_path / "dep", store="lazy")

    def test_pack_deployment_converts_in_place(self, outsourcing, tmp_path):
        owner, original = outsourcing
        save_outsourcing(tmp_path / "dep", original, "rsse", store="json")
        before = self.search_ids(owner, original.secure_index)
        pack_deployment(tmp_path / "dep")
        assert not (tmp_path / "dep" / "index.bin").exists()
        assert (tmp_path / "dep" / "index.rpk").is_file()
        restored, _ = load_outsourcing(tmp_path / "dep")
        assert isinstance(restored.secure_index, PackedStore)
        assert self.search_ids(owner, restored.secure_index) == before
        restored.secure_index.close()
        pack_deployment(tmp_path / "dep")  # idempotent no-op
        restored, _ = load_outsourcing(tmp_path / "dep", store="dict")
        assert self.search_ids(owner, restored.secure_index) == before


class TestKeyFiles:
    def test_key_roundtrip(self, tmp_path):
        key = keygen()
        save_key(tmp_path / "owner.key", key)
        assert load_key(tmp_path / "owner.key") == key

    def test_credentials_roundtrip(self, tmp_path):
        credentials = UserCredentials(
            scheme_key=keygen().trapdoor_only(), file_key=generate_key()
        )
        save_credentials(tmp_path / "user.cred", credentials)
        restored = load_credentials(tmp_path / "user.cred")
        assert restored.scheme_key == credentials.scheme_key
        assert restored.file_key == credentials.file_key

    def test_malformed_credentials(self, tmp_path):
        (tmp_path / "bad.cred").write_text("{}")
        with pytest.raises(ProtocolError):
            load_credentials(tmp_path / "bad.cred")
