"""Tests for the packed on-disk storage engine (:mod:`repro.cloud.store`).

Covers the packed file format (writers, mmap reader, corruption
rejection), the mutable :class:`PackedStore` (delta log replay,
compaction), and the acceptance property that search responses are
byte-identical between the dict-backed :class:`SecureIndex` and the
mmap-backed store on the same corpus and key — for a single
:class:`CloudServer` and for a sharded :class:`ClusterServer` built
with :meth:`ShardedIndex.from_stores`.
"""

import random

import pytest

from repro.cloud import Channel, CloudServer, DataOwner, DataUser
from repro.cloud.cluster import ClusterServer, ShardedIndex, shard_for_address
from repro.cloud.protocol import SearchRequest
from repro.cloud.storage import BlobStore
from repro.cloud.store import (
    HEADER_BYTES,
    PackedIndexStore,
    PackedIndexWriter,
    PackedStore,
    SpillingPackWriter,
    load_packed_index,
    pack_index,
)
from repro.cloud.updates import RemoteIndexMaintainer
from repro.core import EfficientRSSE, TEST_PARAMETERS
from repro.core.secure_index import EntryLayout, SecureIndex
from repro.corpus import generate_corpus
from repro.errors import IndexError_, ParameterError

LAYOUT = EntryLayout(zero_pad_bytes=2, file_id_bytes=8, score_bytes=3)
WIDTH = LAYOUT.ciphertext_bytes
TOKEN = b"owner-update-token"


def make_entries(rng, count):
    return [rng.randbytes(WIDTH) for _ in range(count)]


def make_lists(seed, num_lists, max_entries=9):
    rng = random.Random(seed)
    lists = {}
    for i in range(num_lists):
        address = b"addr-%04d" % i
        lists[address] = make_entries(rng, rng.randint(1, max_entries))
    return lists


def write_packed(path, lists, padded_length=None):
    with PackedIndexWriter(path, LAYOUT, padded_length) as writer:
        for address in sorted(lists):
            writer.write_list(address, lists[address])
    return path


@pytest.fixture(scope="module")
def corpus_world():
    documents = generate_corpus(16, seed=61, vocabulary_size=150)
    scheme = EfficientRSSE(TEST_PARAMETERS)
    owner = DataOwner(scheme)
    outsourcing = owner.setup(documents[:12])
    return documents, scheme, owner, outsourcing


class TestPackedFileFormat:
    def test_empty_index_roundtrip(self, tmp_path):
        path = write_packed(tmp_path / "empty.rpk", {})
        with PackedIndexStore(path) as store:
            assert store.num_lists == 0
            assert store.total_entries == 0
            assert list(store.addresses()) == []
            assert list(store.items()) == []
            assert store.lookup(b"anything") is None
            with pytest.raises(IndexError_, match="empty"):
                store.average_list_size_bytes()
        index = load_packed_index(path)
        assert index.num_lists == 0

    def test_single_term_roundtrip(self, tmp_path):
        entries = make_entries(random.Random(7), 5)
        path = write_packed(tmp_path / "one.rpk", {b"only-term": entries})
        with PackedIndexStore(path) as store:
            assert store.num_lists == 1
            assert list(store.addresses()) == [b"only-term"]
            assert store.lookup(b"only-term") == entries
            assert store.lookup(b"other") is None

    def test_many_lists_roundtrip(self, tmp_path):
        lists = make_lists(11, 40)
        path = write_packed(tmp_path / "many.rpk", lists)
        with PackedIndexStore(path) as store:
            assert store.num_lists == len(lists)
            assert dict(store.items()) == lists
            assert store.total_entries == sum(
                len(v) for v in lists.values()
            )

    def test_writer_pads_like_secure_index(self, tmp_path):
        rng = random.Random(3)
        entries = make_entries(rng, 2)
        path = tmp_path / "padded.rpk"
        with PackedIndexWriter(path, LAYOUT, padded_length=5) as writer:
            writer.write_list(b"term", entries)
        with PackedIndexStore(path) as store:
            assert store.padded_length == 5
            stored = store.lookup(b"term")
            assert len(stored) == 5
            assert stored[:2] == entries
            assert all(len(e) == WIDTH for e in stored)

    def test_writer_requires_ascending_addresses(self, tmp_path):
        writer = PackedIndexWriter(tmp_path / "x.rpk", LAYOUT)
        writer.write_list(b"bbb", make_entries(random.Random(1), 1))
        with pytest.raises(IndexError_, match="ascending"):
            writer.write_list(b"aaa", make_entries(random.Random(2), 1))
        with pytest.raises(IndexError_, match="ascending"):
            writer.write_list(b"bbb", make_entries(random.Random(3), 1))
        writer.close()

    def test_writer_rejects_bad_input(self, tmp_path):
        writer = PackedIndexWriter(tmp_path / "x.rpk", LAYOUT)
        with pytest.raises(ParameterError, match="address"):
            writer.write_list(b"", [b"\x00" * WIDTH])
        with pytest.raises(ParameterError, match="width"):
            writer.write_list(b"term", [b"\x00" * (WIDTH - 1)])
        writer.close()
        with pytest.raises(IndexError_, match="closed"):
            writer.write_list(b"term", [b"\x00" * WIDTH])

    def test_spilling_writer_matches_sorted_writer(self, tmp_path):
        lists = make_lists(23, 30)
        reference = write_packed(tmp_path / "sorted.rpk", lists)
        shuffled = list(lists)
        random.Random(5).shuffle(shuffled)
        writer = SpillingPackWriter(
            tmp_path / "spilled.rpk", LAYOUT, run_entries=17
        )
        for address in shuffled:
            writer.add_list(address, lists[address])
        assert writer.runs_spilled > 1
        writer.close()
        assert (
            (tmp_path / "spilled.rpk").read_bytes()
            == reference.read_bytes()
        )

    def test_spilling_writer_rejects_duplicates(self, tmp_path):
        with SpillingPackWriter(tmp_path / "x.rpk", LAYOUT) as writer:
            writer.add_list(b"term", make_entries(random.Random(1), 1))
            with pytest.raises(IndexError_, match="duplicate"):
                writer.add_list(b"term", make_entries(random.Random(2), 1))


class TestCorruptionRejection:
    @pytest.fixture()
    def packed(self, tmp_path):
        return write_packed(tmp_path / "good.rpk", make_lists(31, 12))

    def test_truncated_header(self, tmp_path, packed):
        bad = tmp_path / "trunc.rpk"
        bad.write_bytes(packed.read_bytes()[: HEADER_BYTES - 1])
        with pytest.raises(IndexError_, match="truncated"):
            PackedIndexStore(bad)

    def test_bad_magic(self, tmp_path, packed):
        data = bytearray(packed.read_bytes())
        data[:4] = b"XXXX"
        bad = tmp_path / "magic.rpk"
        bad.write_bytes(bytes(data))
        with pytest.raises(IndexError_, match="magic"):
            PackedIndexStore(bad)

    def test_bad_version(self, tmp_path, packed):
        data = bytearray(packed.read_bytes())
        data[4:6] = (99).to_bytes(2, "big")
        bad = tmp_path / "version.rpk"
        bad.write_bytes(bytes(data))
        with pytest.raises(IndexError_, match="version"):
            PackedIndexStore(bad)

    def test_truncated_body(self, tmp_path, packed):
        data = packed.read_bytes()
        bad = tmp_path / "body.rpk"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(IndexError_):
            PackedIndexStore(bad)

    def test_tampered_trailer(self, tmp_path, packed):
        data = bytearray(packed.read_bytes())
        data[-1] ^= 0xFF
        bad = tmp_path / "trailer.rpk"
        bad.write_bytes(bytes(data))
        with pytest.raises(IndexError_):
            PackedIndexStore(bad)

    def test_eager_loader_rejects_corruption_too(self, tmp_path, packed):
        bad = tmp_path / "eager.rpk"
        bad.write_bytes(b"RPKJ" + packed.read_bytes()[4:])
        with pytest.raises(IndexError_, match="magic"):
            load_packed_index(bad)


class TestPackIndexHelpers:
    def test_pack_and_eager_load_roundtrip(self, tmp_path, corpus_world):
        _, _, _, outsourcing = corpus_world
        index = outsourcing.secure_index
        path = pack_index(index, tmp_path / "corpus.rpk")
        restored = load_packed_index(path)
        assert isinstance(restored, SecureIndex)
        assert restored.layout == index.layout
        assert restored.padded_length == index.padded_length
        assert dict(restored.items()) == dict(index.items())

    def test_mmap_store_matches_dict_items(self, tmp_path, corpus_world):
        _, _, _, outsourcing = corpus_world
        index = outsourcing.secure_index
        path = pack_index(index, tmp_path / "corpus.rpk")
        with PackedIndexStore(path) as store:
            assert dict(store.items()) == dict(index.items())
            assert store.to_secure_index().size_bytes() == index.size_bytes()


class TestByteIdenticalServing:
    """The PR's acceptance property: dict vs mmap responses match."""

    def test_cloud_server_responses_identical(self, tmp_path, corpus_world):
        _, scheme, owner, outsourcing = corpus_world
        path = pack_index(outsourcing.secure_index, tmp_path / "idx.rpk")
        dict_server = CloudServer(
            outsourcing.secure_index, outsourcing.blob_store, can_rank=True,
            cache_searches=False,
        )
        with PackedStore(path) as store:
            mmap_server = CloudServer(
                store, outsourcing.blob_store, can_rank=True,
                cache_searches=False,
            )
            for word in ("network", "protocol", "router", "gateway"):
                trapdoor = scheme.trapdoor(owner.key, word)
                request = SearchRequest(
                    trapdoor_bytes=trapdoor.serialize(), top_k=5
                ).to_bytes()
                assert dict_server.handle(request) == mmap_server.handle(
                    request
                )

    def test_cluster_server_over_packed_shards(self, tmp_path, corpus_world):
        _, scheme, owner, outsourcing = corpus_world
        index = outsourcing.secure_index
        num_shards = 2
        writers = [
            SpillingPackWriter(
                tmp_path / f"shard-{i}.rpk", index.layout,
                index.padded_length,
            )
            for i in range(num_shards)
        ]
        for address, entries in index.items():
            writers[shard_for_address(address, num_shards)].add_list(
                address, entries
            )
        for writer in writers:
            writer.close()
        stores = [
            PackedStore(tmp_path / f"shard-{i}.rpk")
            for i in range(num_shards)
        ]
        sharded = ShardedIndex.from_stores(stores)
        single = CloudServer(
            index, outsourcing.blob_store, can_rank=True,
            cache_searches=False,
        )
        with ClusterServer(
            sharded, outsourcing.blob_store, can_rank=True,
            cache_searches=False,
        ) as cluster:
            for word in ("network", "protocol", "router"):
                trapdoor = scheme.trapdoor(owner.key, word)
                request = SearchRequest(
                    trapdoor_bytes=trapdoor.serialize(), top_k=5
                ).to_bytes()
                assert cluster.handle(request) == single.handle(request)
        for store in stores:
            store.close()


class TestPackedStoreDeltas:
    @pytest.fixture()
    def base(self, tmp_path):
        lists = make_lists(41, 10)
        path = write_packed(tmp_path / "base.rpk", lists)
        return path, lists

    def test_add_and_replace_visible_and_durable(self, base):
        path, lists = base
        rng = random.Random(9)
        added = make_entries(rng, 3)
        replaced = make_entries(rng, 2)
        victim = sorted(lists)[0]
        with PackedStore(path) as store:
            store.add_list(b"new-term", added)
            store.replace_list(victim, replaced)
            assert store.lookup(b"new-term") == added
            assert store.lookup(victim) == replaced
            assert b"new-term" in store
            assert store.pending_delta_records == 2
            expected = dict(store.items())
        with PackedStore(path) as store:
            assert store.pending_delta_records == 2
            assert store.lookup(b"new-term") == added
            assert store.lookup(victim) == replaced
            assert dict(store.items()) == expected

    def test_mutation_error_parity_with_secure_index(self, base):
        path, lists = base
        victim = sorted(lists)[0]
        with PackedStore(path) as store:
            with pytest.raises(IndexError_, match="duplicate"):
                store.add_list(victim, make_entries(random.Random(1), 1))
            with pytest.raises(IndexError_, match="missing"):
                store.replace_list(
                    b"ghost", make_entries(random.Random(2), 1)
                )
            with pytest.raises(ParameterError, match="width"):
                store.add_list(b"short", [b"\x00" * (WIDTH - 1)])

    def test_compact_folds_delta_and_truncates_log(self, base):
        path, lists = base
        rng = random.Random(13)
        with PackedStore(path) as store:
            store.add_list(b"delta-term", make_entries(rng, 4))
            store.replace_list(sorted(lists)[1], make_entries(rng, 2))
            before = dict(store.items())
            assert store.compact() == 2
            assert store.pending_delta_records == 0
            assert dict(store.items()) == before
        with PackedStore(path) as store:
            assert store.pending_delta_records == 0
            assert dict(store.items()) == before
            assert store.compact() == 0

    def test_reload_after_delta_append_without_compaction(self, base):
        path, lists = base
        rng = random.Random(17)
        entries = make_entries(rng, 2)
        with PackedStore(path) as store:
            store.add_list(b"uncompacted", entries)
        with PackedIndexStore(path) as raw_base:
            # The base file is untouched until compaction.
            assert raw_base.lookup(b"uncompacted") is None
        with PackedStore(path) as store:
            assert store.lookup(b"uncompacted") == entries

    def test_truncated_delta_log_rejected(self, base):
        path, lists = base
        with PackedStore(path) as store:
            store.add_list(b"torn", make_entries(random.Random(19), 2))
        delta = path.with_name(path.name + ".delta")
        data = delta.read_bytes()
        delta.write_bytes(data[:-3])
        with pytest.raises(IndexError_, match="truncated"):
            PackedStore(path)


class TestUpdateProtocolOverPackedStore:
    def test_remote_insert_then_compact_and_reload(
        self, tmp_path, corpus_world
    ):
        documents, scheme, owner, outsourcing = corpus_world
        path = pack_index(outsourcing.secure_index, tmp_path / "live.rpk")
        store = PackedStore(path)
        server = CloudServer(
            store, outsourcing.blob_store, can_rank=True,
            cache_searches=True, update_token=TOKEN,
        )
        maintainer = RemoteIndexMaintainer(
            owner, Channel(server.handle), TOKEN
        )
        user = DataUser(
            scheme, owner.authorize_user(), Channel(server.handle),
            owner.analyzer,
        )
        new_doc = documents[12]
        report = maintainer.insert_document(new_doc)
        assert report.lists_touched > 0
        hits = user.search_ranked_topk("network", 100)
        assert new_doc.doc_id in {hit.file_id for hit in hits}
        assert store.pending_delta_records > 0
        assert store.compact() > 0
        store.close()
        # A fresh process sees the acknowledged update in the base file.
        with PackedStore(path) as reopened:
            assert reopened.pending_delta_records == 0
            server = CloudServer(
                reopened, outsourcing.blob_store, can_rank=True,
                cache_searches=False,
            )
            user = DataUser(
                scheme, owner.authorize_user(), Channel(server.handle),
                owner.analyzer,
            )
            hits = user.search_ranked_topk("network", 100)
            assert new_doc.doc_id in {hit.file_id for hit in hits}
