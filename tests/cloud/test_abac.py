"""Unit tests for attribute-based access control (Section VIII direction)."""

import pytest

from repro.cloud.abac import (
    Attribute,
    AttributeAuthority,
    PolicyDecryptor,
    Threshold,
    and_of,
    k_of,
    or_of,
)
from repro.crypto import generate_key
from repro.errors import CryptoError, ParameterError


@pytest.fixture(scope="module")
def authority():
    return AttributeAuthority(generate_key())


def decryptor(authority, attributes) -> PolicyDecryptor:
    return PolicyDecryptor(authority.issue_attribute_keys(set(attributes)))


class TestPolicyTrees:
    def test_attribute_satisfaction(self):
        assert Attribute("doctor").satisfied_by({"doctor", "nurse"})
        assert not Attribute("doctor").satisfied_by({"nurse"})

    def test_and_or_semantics(self):
        policy = and_of(Attribute("a"), or_of(Attribute("b"), Attribute("c")))
        assert policy.satisfied_by({"a", "b"})
        assert policy.satisfied_by({"a", "c"})
        assert not policy.satisfied_by({"a"})
        assert not policy.satisfied_by({"b", "c"})

    def test_threshold_semantics(self):
        policy = k_of(2, Attribute("a"), Attribute("b"), Attribute("c"))
        assert policy.satisfied_by({"a", "c"})
        assert not policy.satisfied_by({"c"})

    def test_nested_policies(self):
        policy = or_of(
            and_of(Attribute("admin"), Attribute("mfa")),
            k_of(2, Attribute("dev"), Attribute("oncall"), Attribute("lead")),
        )
        assert policy.satisfied_by({"admin", "mfa"})
        assert policy.satisfied_by({"dev", "lead"})
        assert not policy.satisfied_by({"admin"})
        assert not policy.satisfied_by({"dev"})

    def test_validation(self):
        with pytest.raises(ParameterError):
            Attribute("")
        with pytest.raises(ParameterError):
            Threshold(k=1, children=())
        with pytest.raises(ParameterError):
            Threshold(k=3, children=(Attribute("a"), Attribute("b")))
        with pytest.raises(ParameterError):
            Threshold(k=0, children=(Attribute("a"),))


class TestEncryptDecrypt:
    def test_decryption_matches_policy_satisfaction(self, authority):
        policy = and_of(
            Attribute("doctor"),
            or_of(Attribute("cardiology"), Attribute("oncology")),
        )
        ciphertext = authority.encrypt(b"patient records key", policy)
        satisfying = [
            {"doctor", "cardiology"},
            {"doctor", "oncology"},
            {"doctor", "cardiology", "oncology", "extra"},
        ]
        failing = [
            {"doctor"},
            {"cardiology"},
            {"cardiology", "oncology"},
            {"nurse", "cardiology"},
        ]
        for attributes in satisfying:
            assert (
                decryptor(authority, attributes).decrypt(ciphertext)
                == b"patient records key"
            )
        for attributes in failing:
            with pytest.raises(CryptoError):
                decryptor(authority, attributes).decrypt(ciphertext)

    def test_threshold_gate_end_to_end(self, authority):
        policy = k_of(
            3, *(Attribute(f"dept{i}") for i in range(5))
        )
        ciphertext = authority.encrypt(b"quorum secret", policy)
        assert (
            decryptor(authority, {"dept0", "dept2", "dept4"}).decrypt(
                ciphertext
            )
            == b"quorum secret"
        )
        with pytest.raises(CryptoError):
            decryptor(authority, {"dept0", "dept2"}).decrypt(ciphertext)

    def test_single_attribute_policy(self, authority):
        ciphertext = authority.encrypt(b"x", Attribute("root"))
        assert decryptor(authority, {"root"}).decrypt(ciphertext) == b"x"
        with pytest.raises(CryptoError):
            decryptor(authority, {"user"}).decrypt(ciphertext)

    def test_each_encryption_uses_fresh_session_key(self, authority):
        policy = Attribute("a")
        first = authority.encrypt(b"same payload", policy)
        second = authority.encrypt(b"same payload", policy)
        assert first.payload != second.payload

    def test_foreign_authority_keys_fail(self, authority):
        policy = Attribute("a")
        ciphertext = authority.encrypt(b"x", policy)
        other = AttributeAuthority(generate_key())
        with pytest.raises(CryptoError):
            decryptor(other, {"a"}).decrypt(ciphertext)

    def test_deep_nesting(self, authority):
        policy = and_of(
            Attribute("l0"),
            or_of(
                and_of(Attribute("l1a"), Attribute("l1b")),
                and_of(
                    Attribute("l1c"),
                    k_of(2, Attribute("x"), Attribute("y"), Attribute("z")),
                ),
            ),
        )
        ciphertext = authority.encrypt(b"deep", policy)
        assert (
            decryptor(authority, {"l0", "l1c", "x", "z"}).decrypt(ciphertext)
            == b"deep"
        )
        with pytest.raises(CryptoError):
            decryptor(authority, {"l0", "l1c", "x"}).decrypt(ciphertext)


class TestIssuance:
    def test_issues_one_key_per_attribute(self, authority):
        keys = authority.issue_attribute_keys({"a", "b"})
        assert set(keys) == {"a", "b"}
        assert keys["a"] != keys["b"]

    def test_keys_deterministic_per_attribute(self, authority):
        first = authority.issue_attribute_keys({"a"})
        second = authority.issue_attribute_keys({"a"})
        assert first == second

    def test_validation(self, authority):
        with pytest.raises(ParameterError):
            AttributeAuthority(b"")
        with pytest.raises(ParameterError):
            authority.issue_attribute_keys(set())
        with pytest.raises(ParameterError):
            PolicyDecryptor({})
