"""Unit tests for broadcast-based user authorization and revocation."""

import pytest

from repro.cloud.authorization import AuthorizationManager
from repro.cloud.owner import UserCredentials
from repro.crypto import generate_key, keygen
from repro.errors import CryptoError, ParameterError


def credentials() -> UserCredentials:
    return UserCredentials(
        scheme_key=keygen().trapdoor_only(), file_key=generate_key()
    )


@pytest.fixture()
def manager():
    return AuthorizationManager(generate_key(), capacity=8)


class TestAuthorization:
    def test_all_authorized_users_redeem(self, manager):
        tickets = [manager.authorize_user() for _ in range(4)]
        bundle = credentials()
        broadcast = manager.publish_credentials(bundle)
        for ticket in tickets:
            redeemed, epoch = AuthorizationManager.redeem(ticket, broadcast)
            assert epoch == 0
            assert redeemed.file_key == bundle.file_key
            assert redeemed.scheme_key == bundle.scheme_key

    def test_capacity_exhaustion(self):
        manager = AuthorizationManager(generate_key(), capacity=2)
        manager.authorize_user()
        manager.authorize_user()
        with pytest.raises(ParameterError):
            manager.authorize_user()

    def test_slots_are_sequential(self, manager):
        a = manager.authorize_user()
        b = manager.authorize_user()
        assert a.key_set.user_index == 0
        assert b.key_set.user_index == 1


class TestRevocation:
    def test_revoked_user_locked_out_of_rotation(self, manager):
        keep = manager.authorize_user()
        revoke = manager.authorize_user()
        manager.publish_credentials(credentials())

        manager.revoke_user(revoke.key_set.user_index)
        fresh = credentials()
        rotated = manager.rotate_credentials(fresh)

        redeemed, epoch = AuthorizationManager.redeem(keep, rotated)
        assert epoch == 1
        assert redeemed.file_key == fresh.file_key
        with pytest.raises(CryptoError):
            AuthorizationManager.redeem(revoke, rotated)

    def test_revoked_user_still_reads_old_epoch(self, manager):
        """The forward-secrecy caveat: old broadcasts stay readable."""
        ticket = manager.authorize_user()
        old = manager.publish_credentials(credentials())
        manager.revoke_user(0)
        redeemed, epoch = AuthorizationManager.redeem(ticket, old)
        assert epoch == 0
        assert redeemed is not None

    def test_revoke_unknown_slot_rejected(self, manager):
        manager.authorize_user()
        with pytest.raises(ParameterError):
            manager.revoke_user(5)
        with pytest.raises(ParameterError):
            manager.revoke_user(-1)

    def test_revoked_slots_tracked(self, manager):
        manager.authorize_user()
        manager.authorize_user()
        manager.revoke_user(1)
        assert manager.revoked_slots == {1}

    def test_epoch_increments_per_rotation(self, manager):
        manager.authorize_user()
        assert manager.epoch == 0
        manager.rotate_credentials(credentials())
        manager.rotate_credentials(credentials())
        assert manager.epoch == 2

    def test_multiple_revocations(self, manager):
        tickets = [manager.authorize_user() for _ in range(6)]
        manager.revoke_user(1)
        manager.revoke_user(4)
        rotated = manager.rotate_credentials(credentials())
        for index, ticket in enumerate(tickets):
            if index in (1, 4):
                with pytest.raises(CryptoError):
                    AuthorizationManager.redeem(ticket, rotated)
            else:
                AuthorizationManager.redeem(ticket, rotated)


class TestPayloadIntegrity:
    def test_garbled_payload_detected(self, manager):
        from repro.cloud.broadcast import BroadcastCiphertext

        ticket = manager.authorize_user()
        broadcast = manager.publish_credentials(credentials())
        node, wrapped = broadcast.wrapped[0]
        tampered = BroadcastCiphertext(
            wrapped=((node, wrapped[:-1] + bytes([wrapped[-1] ^ 1])),)
        )
        with pytest.raises(CryptoError):
            AuthorizationManager.redeem(ticket, tampered)
