"""Unit tests for retry policies, hedging, and the circuit breaker."""

import pytest

from repro.cloud.protocol import SearchResponse
from repro.cloud.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    RetryingChannel,
    RetryPolicy,
    response_is_well_formed,
)
from repro.errors import (
    CallDroppedError,
    CallTimeoutError,
    CorruptedResponseError,
    ParameterError,
    ProtocolError,
    RetryExhaustedError,
)

OK = b'{"kind": "ok"}'


class ScriptedChannel:
    """An inner channel whose per-call behavior is scripted.

    Script items are response bytes, exception instances to raise, or
    ``(response, modeled_delay)`` pairs; the last item repeats forever.
    """

    def __init__(self, script):
        self._script = list(script)
        self.calls = 0
        self.last_injected_delay_s = 0.0

    def call(self, request: bytes) -> bytes:
        index = min(self.calls, len(self._script) - 1)
        item = self._script[index]
        self.calls += 1
        delay = 0.0
        if isinstance(item, tuple):
            item, delay = item
        self.last_injected_delay_s = delay
        if isinstance(item, Exception):
            raise item
        return item


class TestRetryPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(base_backoff_s=-0.1)
        with pytest.raises(ParameterError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ParameterError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ParameterError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ParameterError):
            RetryPolicy(hedge_after_s=-1.0)

    def test_hedge_must_be_below_deadline(self):
        with pytest.raises(ParameterError):
            RetryPolicy(deadline_s=0.5, hedge_after_s=0.5)
        RetryPolicy(deadline_s=0.5, hedge_after_s=0.4)  # fine


class TestBackoffSchedule:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_backoff_s=0.1,
            backoff_multiplier=2.0,
            max_backoff_s=0.25,
            jitter_fraction=0.0,
        )
        assert policy.backoff_s(0, 1) == pytest.approx(0.1)
        assert policy.backoff_s(0, 2) == pytest.approx(0.2)
        assert policy.backoff_s(0, 3) == pytest.approx(0.25)  # capped
        assert policy.backoff_s(0, 9) == pytest.approx(0.25)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter_seed=42)
        twin = RetryPolicy(jitter_seed=42)
        for call_index in range(5):
            for retry in range(1, 4):
                assert policy.backoff_s(call_index, retry) == twin.backoff_s(
                    call_index, retry
                )

    def test_jitter_varies_with_seed_and_index(self):
        policy = RetryPolicy(jitter_seed=1)
        other = RetryPolicy(jitter_seed=2)
        assert policy.backoff_s(0, 1) != other.backoff_s(0, 1)
        assert policy.backoff_s(0, 1) != policy.backoff_s(1, 1)

    def test_jitter_only_shrinks_within_fraction(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, jitter_fraction=0.2, max_backoff_s=10.0
        )
        for call_index in range(20):
            backoff = policy.backoff_s(call_index, 1)
            assert 0.1 * 0.8 < backoff <= 0.1

    def test_rejects_bad_retry_number(self):
        with pytest.raises(ParameterError):
            RetryPolicy().backoff_s(0, 0)


class TestFramingCheck:
    def test_accepts_real_protocol_response(self):
        response = SearchResponse(matches=(), files=())
        assert response_is_well_formed(response.to_bytes())

    def test_rejects_garbled_bytes(self):
        assert not response_is_well_formed(b"\x00\xffGARBLED\x00{}")
        assert not response_is_well_formed(b"not json at all")
        assert not response_is_well_formed(b"[1, 2, 3]")
        assert not response_is_well_formed(b"{}")  # no kind tag


class TestRetryingChannel:
    def make(self, script, policy=None, **kwargs):
        inner = ScriptedChannel(script)
        slept = []
        channel = RetryingChannel(
            inner,
            policy if policy is not None else RetryPolicy(),
            sleep=slept.append,
            **kwargs,
        )
        return inner, channel, slept

    def test_first_try_success(self):
        inner, channel, slept = self.make([OK])
        assert channel.call(b"q") == OK
        assert inner.calls == 1
        assert slept == []
        (trace,) = channel.trace
        assert trace.succeeded
        assert [a.outcome for a in trace.attempts] == ["ok"]

    def test_retries_transport_failures_with_policy_backoffs(self):
        policy = RetryPolicy(max_attempts=4, jitter_seed=9)
        inner, channel, slept = self.make(
            [CallDroppedError("lost"), CallDroppedError("lost"), OK],
            policy,
        )
        assert channel.call(b"q") == OK
        assert inner.calls == 3
        assert slept == [policy.backoff_s(0, 1), policy.backoff_s(0, 2)]
        assert channel.retry_stats.retries == 2
        (trace,) = channel.trace
        assert [a.outcome for a in trace.attempts] == [
            "CallDroppedError", "CallDroppedError", "ok",
        ]

    def test_corrupted_response_is_retried(self):
        inner, channel, _ = self.make([b"\x00\xffgarbage", OK])
        assert channel.call(b"q") == OK
        assert channel.retry_stats.corrupt_responses == 1
        (trace,) = channel.trace
        assert trace.attempts[0].outcome == "CorruptedResponseError"

    def test_modeled_deadline_counts_as_timeout(self):
        policy = RetryPolicy(max_attempts=2, deadline_s=0.5)
        inner, channel, _ = self.make([(OK, 1.0)], policy)
        with pytest.raises(RetryExhaustedError) as excinfo:
            channel.call(b"q")
        assert isinstance(excinfo.value.__cause__, CallTimeoutError)
        assert channel.retry_stats.timeouts == 2
        assert channel.retry_stats.exhausted == 1
        (trace,) = channel.trace
        assert not trace.succeeded
        assert [a.outcome for a in trace.attempts] == [
            "CallTimeoutError", "CallTimeoutError",
        ]

    def test_exhaustion_chains_last_error(self):
        inner, channel, _ = self.make(
            [CallDroppedError("lost")], RetryPolicy(max_attempts=3)
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            channel.call(b"q")
        assert inner.calls == 3
        assert isinstance(excinfo.value.__cause__, CallDroppedError)

    def test_protocol_error_propagates_without_retry(self):
        inner, channel, _ = self.make([ProtocolError("bad request")])
        with pytest.raises(ProtocolError):
            channel.call(b"q")
        assert inner.calls == 1  # retrying cannot fix a bad request
        assert channel.retry_stats.retries == 0

    def test_hedged_attempt_faster_response_wins(self):
        policy = RetryPolicy(hedge_after_s=0.5)
        fast = b'{"kind": "fast"}'
        inner, channel, _ = self.make(
            [(b'{"kind": "slow"}', 1.0), (fast, 0.1)], policy
        )
        assert channel.call(b"q") == fast
        assert inner.calls == 2
        assert channel.retry_stats.hedged_calls == 1
        (trace,) = channel.trace
        assert trace.attempts[0].outcome == "hedged-ok"
        assert trace.attempts[0].modeled_delay_s == 0.1

    def test_failed_hedge_keeps_original_response(self):
        policy = RetryPolicy(hedge_after_s=0.5)
        slow = b'{"kind": "slow"}'
        inner, channel, _ = self.make(
            [(slow, 1.0), CallDroppedError("hedge lost")], policy
        )
        assert channel.call(b"q") == slow
        assert inner.calls == 2

    def test_fast_call_is_not_hedged(self):
        policy = RetryPolicy(hedge_after_s=0.5)
        inner, channel, _ = self.make([(OK, 0.1)], policy)
        assert channel.call(b"q") == OK
        assert inner.calls == 1
        assert channel.retry_stats.hedged_calls == 0

    def test_custom_validate(self):
        inner, channel, _ = self.make(
            [b"raw-but-fine"],
            RetryPolicy(max_attempts=1),
            validate=lambda response: True,
        )
        assert channel.call(b"q") == b"raw-but-fine"


class TestBreakerConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ParameterError):
            BreakerConfig(probe_interval=0)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_on_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.snapshot().times_opened == 1

    def test_success_clears_the_streak(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_every_interval(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, probe_interval=4)
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        outcomes = [breaker.allow() for _ in range(4)]
        assert outcomes == [False, False, False, True]  # 4th is a probe
        assert breaker.state == HALF_OPEN
        snapshot = breaker.snapshot()
        assert snapshot.probes == 1
        assert snapshot.suppressed_calls == 4

    def test_successful_probe_closes(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, probe_interval=1)
        )
        breaker.record_failure()
        assert breaker.allow()  # immediate probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.snapshot().consecutive_failures == 0

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, probe_interval=2)
        )
        breaker.record_failure()
        assert [breaker.allow() for _ in range(2)] == [False, True]
        breaker.record_failure()  # the probe fails
        assert breaker.state == OPEN
        assert breaker.snapshot().times_opened == 2
        # Probing resumes on the same cadence.
        assert [breaker.allow() for _ in range(2)] == [False, True]

    def test_snapshot_is_immutable(self):
        snapshot = CircuitBreaker().snapshot()
        with pytest.raises(AttributeError):
            snapshot.state = OPEN  # type: ignore[misc]
