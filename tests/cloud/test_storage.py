"""Unit tests for the encrypted blob store."""

import pytest

from repro.cloud.storage import BlobStore
from repro.errors import ProtocolError


class TestBlobStore:
    def test_put_get(self):
        store = BlobStore()
        store.put("d1", b"ciphertext")
        assert store.get("d1") == b"ciphertext"

    def test_duplicate_put_rejected(self):
        store = BlobStore()
        store.put("d1", b"a")
        with pytest.raises(ProtocolError):
            store.put("d1", b"b")

    def test_missing_get_rejected(self):
        with pytest.raises(ProtocolError):
            BlobStore().get("nope")

    def test_delete(self):
        store = BlobStore()
        store.put("d1", b"a")
        store.delete("d1")
        assert "d1" not in store
        with pytest.raises(ProtocolError):
            store.delete("d1")

    def test_len_contains_ids(self):
        store = BlobStore()
        store.put("a", b"1")
        store.put("b", b"22")
        assert len(store) == 2
        assert "a" in store
        assert set(store.ids()) == {"a", "b"}

    def test_total_bytes(self):
        store = BlobStore()
        store.put("a", b"123")
        store.put("b", b"4567")
        assert store.total_bytes() == 7

    def test_blob_isolation(self):
        store = BlobStore()
        data = bytearray(b"mutable")
        store.put("a", data)
        data[0] = 0
        assert store.get("a") == b"mutable"
