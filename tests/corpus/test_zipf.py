"""Unit tests for the Zipf sampler."""

import random

import pytest

from repro.corpus.zipf import ZipfSampler, zipf_sample_words
from repro.errors import ParameterError


class TestZipfSampler:
    def test_ranks_in_range(self):
        sampler = ZipfSampler(50, rng=random.Random(0))
        assert all(0 <= sampler.sample() < 50 for _ in range(500))

    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, rng=random.Random(7)).sample_many(100)
        b = ZipfSampler(100, rng=random.Random(7)).sample_many(100)
        assert a == b

    def test_low_ranks_dominate(self):
        sampler = ZipfSampler(1000, exponent=1.0, rng=random.Random(1))
        draws = sampler.sample_many(5000)
        top_ten = sum(1 for rank in draws if rank < 10)
        bottom_half = sum(1 for rank in draws if rank >= 500)
        assert top_ten > bottom_half

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfSampler(10, exponent=0.0, rng=random.Random(2))
        draws = sampler.sample_many(10_000)
        counts = [draws.count(rank) for rank in range(10)]
        assert min(counts) > 700

    def test_probability_normalized(self):
        sampler = ZipfSampler(20, exponent=1.2)
        total = sum(sampler.probability(rank) for rank in range(20))
        assert total == pytest.approx(1.0)

    def test_probability_decreasing(self):
        sampler = ZipfSampler(20, exponent=1.0)
        probabilities = [sampler.probability(rank) for rank in range(20)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_probability_validates_rank(self):
        sampler = ZipfSampler(5)
        with pytest.raises(ParameterError):
            sampler.probability(5)
        with pytest.raises(ParameterError):
            sampler.probability(-1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            ZipfSampler(0)
        with pytest.raises(ParameterError):
            ZipfSampler(10, exponent=-1.0)

    def test_sample_many_validates(self):
        with pytest.raises(ParameterError):
            ZipfSampler(5).sample_many(-1)

    def test_size_property(self):
        assert ZipfSampler(33).size == 33


class TestZipfSampleWords:
    def test_samples_from_word_list(self):
        words = ["alpha", "beta", "gamma"]
        sampled = zipf_sample_words(words, 100, rng=random.Random(0))
        assert len(sampled) == 100
        assert set(sampled) <= set(words)

    def test_first_word_most_common(self):
        words = [f"w{i}" for i in range(50)]
        sampled = zipf_sample_words(words, 5000, rng=random.Random(3))
        assert sampled.count("w0") > sampled.count("w40")
