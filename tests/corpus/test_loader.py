"""Unit tests for the document model and directory loader."""

import pytest

from repro.corpus.loader import Document, iter_texts, load_directory
from repro.errors import CorpusError


class TestDocument:
    def test_fields(self):
        document = Document(doc_id="d1", title="T", text="body")
        assert document.doc_id == "d1"
        assert document.size_bytes == 4

    def test_utf8_size(self):
        document = Document(doc_id="d1", title="", text="naïve")
        assert document.size_bytes == len("naïve".encode("utf-8"))

    def test_rejects_empty_id(self):
        with pytest.raises(CorpusError):
            Document(doc_id="", title="T", text="x")


class TestLoadDirectory:
    def test_loads_sorted_with_titles(self, tmp_path):
        (tmp_path / "b.txt").write_text("\n\nSecond Title\nbody b")
        (tmp_path / "a.txt").write_text("First Title\nbody a")
        documents = load_directory(tmp_path)
        assert [d.doc_id for d in documents] == ["a", "b"]
        assert documents[0].title == "First Title"
        assert documents[1].title == "Second Title"

    def test_limit(self, tmp_path):
        for name in ["a", "b", "c"]:
            (tmp_path / f"{name}.txt").write_text("text")
        assert len(load_directory(tmp_path, limit=2)) == 2

    def test_pattern_filter(self, tmp_path):
        (tmp_path / "keep.txt").write_text("x")
        (tmp_path / "skip.log").write_text("y")
        documents = load_directory(tmp_path, pattern="*.txt")
        assert [d.doc_id for d in documents] == ["keep"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(CorpusError):
            load_directory(tmp_path / "nope")

    def test_empty_match_raises(self, tmp_path):
        (tmp_path / "only.log").write_text("x")
        with pytest.raises(CorpusError):
            load_directory(tmp_path, pattern="*.txt")

    def test_undecodable_bytes_replaced(self, tmp_path):
        (tmp_path / "bin.txt").write_bytes(b"ok \xff\xfe bytes")
        documents = load_directory(tmp_path)
        assert "ok" in documents[0].text


class TestIterTexts:
    def test_yields_bodies(self):
        documents = [
            Document(doc_id="a", title="", text="one"),
            Document(doc_id="b", title="", text="two"),
        ]
        assert list(iter_texts(documents)) == ["one", "two"]
