"""Unit tests for the synthetic RFC-style corpus generator."""

import pytest

from repro.corpus.generator import (
    CORE_VOCABULARY,
    RfcCorpusGenerator,
    generate_corpus,
    stream_corpus,
    synthetic_vocabulary,
)
from repro.errors import ParameterError
from repro.ir import Analyzer, InvertedIndex, stem


class TestSyntheticVocabulary:
    def test_size_and_distinctness(self):
        vocabulary = synthetic_vocabulary(500, seed=1)
        assert len(vocabulary) == 500
        assert len(set(vocabulary)) == 500

    def test_core_words_occupy_top_ranks(self):
        vocabulary = synthetic_vocabulary(200, seed=1)
        assert vocabulary[0] == "network"
        assert set(CORE_VOCABULARY[:100]) <= set(vocabulary[:100])

    def test_deterministic(self):
        assert synthetic_vocabulary(300, seed=9) == synthetic_vocabulary(
            300, seed=9
        )

    def test_seed_changes_synthetic_tail(self):
        a = synthetic_vocabulary(300, seed=1)
        b = synthetic_vocabulary(300, seed=2)
        assert a != b

    def test_small_sizes(self):
        assert synthetic_vocabulary(1) == ["network"]

    def test_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            synthetic_vocabulary(0)


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = RfcCorpusGenerator(seed=42).generate(5)
        b = RfcCorpusGenerator(seed=42).generate(5)
        assert [d.text for d in a] == [d.text for d in b]

    def test_seed_sensitivity(self):
        a = RfcCorpusGenerator(seed=1).generate(3)
        b = RfcCorpusGenerator(seed=2).generate(3)
        assert [d.text for d in a] != [d.text for d in b]

    def test_document_ids_sequential(self):
        documents = RfcCorpusGenerator(seed=0).generate(3, start_number=7)
        assert [d.doc_id for d in documents] == ["rfc0007", "rfc0008", "rfc0009"]

    def test_rfc_boilerplate_present(self):
        document = RfcCorpusGenerator(seed=0).generate_document(123)
        assert document.text.startswith("RFC 0123")
        assert "Status of This Memo" in document.text
        assert "1. Introduction" in document.text

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            RfcCorpusGenerator(vocabulary_size=5)
        with pytest.raises(ParameterError):
            RfcCorpusGenerator(mean_length=0)
        with pytest.raises(ParameterError):
            RfcCorpusGenerator(sigma=-1)
        with pytest.raises(ParameterError):
            RfcCorpusGenerator().generate(0)

    def test_vocabulary_copy_is_isolated(self):
        generator = RfcCorpusGenerator(seed=0)
        vocabulary = generator.vocabulary
        vocabulary.clear()
        assert generator.vocabulary


class TestCorpusStatistics:
    """The generator must reproduce the statistics the paper relies on."""

    @pytest.fixture(scope="class")
    def indexed(self):
        documents = generate_corpus(120, seed=13, vocabulary_size=600)
        analyzer = Analyzer()
        index = InvertedIndex()
        for document in documents:
            index.add_document(document.doc_id, analyzer.analyze(document.text))
        return index

    def test_network_has_rich_posting_list(self, indexed):
        # "network" is the top Zipf rank: nearly every file contains it,
        # matching the paper's 1000-entry example list.
        assert indexed.document_frequency(stem("network")) > 100

    def test_document_lengths_vary(self, indexed):
        lengths = [indexed.file_length(f) for f in indexed.file_ids()]
        assert max(lengths) > 2 * min(lengths)

    def test_posting_lengths_are_skewed(self, indexed):
        lengths = sorted(
            (indexed.document_frequency(term) for term in indexed.vocabulary),
            reverse=True,
        )
        # Zipf: the head terms appear in vastly more files than the tail.
        assert lengths[0] > 4 * lengths[len(lengths) // 2]
        assert lengths[0] > 20 * lengths[-1]

    def test_term_frequencies_exceed_one(self, indexed):
        term = stem("network")
        frequencies = [
            posting.term_frequency
            for posting in indexed.posting_list(term)
        ]
        assert max(frequencies) > 3  # repeats exist -> TF variation exists


class TestGenerateCorpus:
    def test_paper_scale_defaults(self):
        documents = generate_corpus(10)
        assert len(documents) == 10
        assert all(document.size_bytes > 500 for document in documents)


class TestStreamingGeneration:
    def test_stream_equals_batch(self):
        batch = generate_corpus(8, seed=19, vocabulary_size=120)
        streamed = list(stream_corpus(8, seed=19, vocabulary_size=120))
        assert streamed == batch

    def test_iter_documents_is_lazy(self):
        generator = RfcCorpusGenerator(seed=7, vocabulary_size=100)
        iterator = generator.iter_documents(10**9)
        first = next(iterator)
        second = next(iterator)
        assert first.doc_id != second.doc_id

    def test_iter_documents_matches_generate(self):
        generator = RfcCorpusGenerator(seed=7, vocabulary_size=100)
        batch = generator.generate(5, start_number=3)
        generator = RfcCorpusGenerator(seed=7, vocabulary_size=100)
        streamed = list(generator.iter_documents(5, start_number=3))
        assert streamed == batch

    def test_iter_documents_rejects_bad_count(self):
        generator = RfcCorpusGenerator(seed=7, vocabulary_size=100)
        with pytest.raises(ParameterError):
            next(generator.iter_documents(0))
