"""API-surface tests: every advertised name exists and is importable.

Guards against drift between ``__all__`` lists and module contents —
the public API is a deliverable, so its integrity is tested like any
other behaviour.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.cloud",
    "repro.core",
    "repro.corpus",
    "repro.crypto",
    "repro.ir",
    "repro.sse",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted(package_name):
    package = importlib.import_module(package_name)
    exported = list(package.__all__)
    assert exported == sorted(exported), f"{package_name}.__all__ unsorted"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_no_duplicate_exports(package_name):
    package = importlib.import_module(package_name)
    exported = list(package.__all__)
    assert len(exported) == len(set(exported))


def test_root_quickstart_names():
    """The names used in README's quickstart must exist at the root."""
    import repro

    for name in [
        "EfficientRSSE", "BasicRankedSSE", "DataOwner", "CloudServer",
        "DataUser", "Channel", "generate_corpus", "Analyzer",
        "InvertedIndex", "keygen", "minimal_range_bits",
    ]:
        assert hasattr(repro, name)


def test_every_public_item_has_a_docstring():
    """Documentation deliverable: public items carry doc comments."""
    import inspect

    undocumented = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            item = getattr(package, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                if not inspect.getdoc(item):
                    undocumented.append(f"{package_name}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
