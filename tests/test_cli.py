"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("corpus")
    code = main(
        ["gen-corpus", "--docs", "15", "--seed", "3", "--out", str(path)]
    )
    assert code == 0
    return path


@pytest.fixture(scope="module")
def deployment(tmp_path_factory, corpus_dir):
    root = tmp_path_factory.mktemp("deploy")
    cloud = root / "cloud"
    cred = root / "user.cred"
    code = main(
        [
            "setup",
            "--corpus", str(corpus_dir),
            "--out", str(cloud),
            "--credentials", str(cred),
        ]
    )
    assert code == 0
    return cloud, cred


class TestGenCorpus:
    def test_writes_documents(self, corpus_dir):
        files = list(corpus_dir.glob("*.txt"))
        assert len(files) == 15
        assert files[0].read_text().startswith("RFC")

    def test_deterministic(self, tmp_path):
        main(["gen-corpus", "--docs", "3", "--seed", "9",
              "--out", str(tmp_path / "a")])
        main(["gen-corpus", "--docs", "3", "--seed", "9",
              "--out", str(tmp_path / "b")])
        for name in ("rfc0001.txt", "rfc0003.txt"):
            assert (tmp_path / "a" / name).read_text() == (
                tmp_path / "b" / name
            ).read_text()


class TestSetupAndSearch:
    def test_deployment_layout(self, deployment):
        cloud, cred = deployment
        assert (cloud / "manifest.json").is_file()
        assert (cloud / "index.bin").is_file()
        assert (cloud / "blobs").is_dir()
        assert cred.is_file()

    def test_search_finds_results(self, deployment, capsys):
        cloud, cred = deployment
        code = main(
            [
                "search",
                "--deployment", str(cloud),
                "--credentials", str(cred),
                "--keyword", "network",
                "-k", "3",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "#1" in output
        assert "round trip" in output

    def test_search_miss_returns_nonzero(self, deployment, capsys):
        cloud, cred = deployment
        code = main(
            [
                "search",
                "--deployment", str(cloud),
                "--credentials", str(cred),
                "--keyword", "zzzzzz",
            ]
        )
        assert code == 1
        assert "no files match" in capsys.readouterr().out

    def test_basic_scheme_deployment(self, tmp_path, corpus_dir, capsys):
        cloud = tmp_path / "cloud-basic"
        cred = tmp_path / "user.cred"
        assert main(
            [
                "setup",
                "--corpus", str(corpus_dir),
                "--out", str(cloud),
                "--credentials", str(cred),
                "--scheme", "basic",
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "search",
                "--deployment", str(cloud),
                "--credentials", str(cred),
                "--keyword", "network",
                "-k", "2",
            ]
        ) == 0
        assert "2 round trip" in capsys.readouterr().out


class TestStats:
    def test_prints_range_recommendation(self, corpus_dir, capsys):
        code = main(["stats", "--corpus", str(corpus_dir)])
        output = capsys.readouterr().out
        assert code == 0
        assert "recommended |R|" in output
        assert "max/lambda" in output

    def test_custom_levels(self, corpus_dir, capsys):
        code = main(
            ["stats", "--corpus", str(corpus_dir), "--levels", "64"]
        )
        assert code == 0
        assert "64" in capsys.readouterr().out


class TestErrorHandling:
    def test_missing_corpus_reports_error(self, tmp_path, capsys):
        code = main(["stats", "--corpus", str(tmp_path / "nope")])
        assert code == 2
        assert "error:" in capsys.readouterr().err
