"""Unit tests for result types."""

import pytest

from repro.core.results import RankedFile, ServerMatch, as_ranking
from repro.errors import ParameterError


class TestServerMatch:
    def test_opm_value_big_endian(self):
        match = ServerMatch(file_id="d1", score_field=b"\x00\x00\x01\x00")
        assert match.opm_value() == 256

    def test_opm_value_full_width(self):
        match = ServerMatch(file_id="d1", score_field=(1 << 45).to_bytes(6, "big"))
        assert match.opm_value() == 1 << 45


class TestRankedFile:
    def test_fields(self):
        entry = RankedFile(rank=1, file_id="d1", score=0.5)
        assert entry.rank == 1 and entry.score == 0.5

    def test_rejects_non_positive_rank(self):
        with pytest.raises(ParameterError):
            RankedFile(rank=0, file_id="d1", score=1)


class TestAsRanking:
    def test_assigns_sequential_ranks(self):
        ranking = as_ranking([("a", 9.0), ("b", 5.0), ("c", 1.0)])
        assert [r.rank for r in ranking] == [1, 2, 3]
        assert [r.file_id for r in ranking] == ["a", "b", "c"]

    def test_empty(self):
        assert as_ranking([]) == []

    def test_accepts_integer_scores(self):
        ranking = as_ranking([("a", 1 << 46)])
        assert ranking[0].score == 1 << 46
