"""Unit tests for score dynamics (incremental updates)."""

import pytest

from repro.core.dynamics import IndexMaintainer
from repro.core.params import TEST_PARAMETERS
from repro.core.rsse import EfficientRSSE
from repro.errors import ParameterError


@pytest.fixture()
def maintainer():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    maintainer = IndexMaintainer(scheme, scheme.keygen())
    maintainer.add_document("d1", ["net"] * 3 + ["pad"] * 7)
    maintainer.add_document("d2", ["net"] * 1 + ["pad"] * 4)
    maintainer.add_document("d3", ["other"] * 5)
    maintainer.build()
    return scheme, maintainer


class TestLifecycle:
    def test_accessors_before_build_raise(self):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        fresh = IndexMaintainer(scheme, scheme.keygen())
        with pytest.raises(ParameterError):
            _ = fresh.secure_index
        with pytest.raises(ParameterError):
            _ = fresh.quantizer

    def test_build_produces_searchable_index(self, maintainer):
        scheme, m = maintainer
        trapdoor = scheme.trapdoor(m._key, "net")
        ranking = scheme.search_ranked(m.secure_index, trapdoor)
        assert {r.file_id for r in ranking} == {"d1", "d2"}


class TestInsert:
    def test_old_entries_byte_identical_after_insert(self, maintainer):
        _, m = maintainer
        before = {
            address: list(entries)
            for address, entries in m.secure_index.items()
        }
        m.insert_document("d4", ["net"] * 2 + ["pad"] * 3)
        for address, entries in before.items():
            now = m.secure_index.lookup(address)
            assert now[: len(entries)] == entries

    def test_insert_report_counts(self, maintainer):
        _, m = maintainer
        report = m.insert_document("d4", ["net", "fresh"])
        assert report.lists_touched == 2
        assert report.entries_written == 2
        assert report.entries_remapped == 0  # the paper's key claim

    def test_inserted_document_is_searchable(self, maintainer):
        scheme, m = maintainer
        m.insert_document("d4", ["net"] * 10 + ["pad"] * 2)
        ranking = scheme.search_ranked(
            m.secure_index, scheme.trapdoor(m._key, "net")
        )
        assert "d4" in {r.file_id for r in ranking}

    def test_inserted_high_scorer_ranks_first(self, maintainer):
        scheme, m = maintainer
        # TF 10 in a 12-term doc quantizes far above the others.
        m.insert_document("d4", ["net"] * 10 + ["pad"] * 2)
        ranking = scheme.search_ranked(
            m.secure_index, scheme.trapdoor(m._key, "net")
        )
        assert ranking[0].file_id == "d4"

    def test_new_keyword_creates_new_list(self, maintainer):
        scheme, m = maintainer
        m.insert_document("d4", ["brandnew"] * 3)
        ranking = scheme.search_ranked(
            m.secure_index, scheme.trapdoor(m._key, "brandnew")
        )
        assert [r.file_id for r in ranking] == ["d4"]

    def test_duplicate_insert_rejected(self, maintainer):
        _, m = maintainer
        with pytest.raises(Exception):
            m.insert_document("d1", ["x"])


class TestRemove:
    def test_removed_document_disappears_from_search(self, maintainer):
        scheme, m = maintainer
        m.remove_document("d1")
        ranking = scheme.search_ranked(
            m.secure_index, scheme.trapdoor(m._key, "net")
        )
        assert {r.file_id for r in ranking} == {"d2"}

    def test_remove_report(self, maintainer):
        _, m = maintainer
        report = m.remove_document("d1")
        assert report.entries_removed == 2  # net + pad
        assert report.entries_written == 0
        assert report.entries_remapped == 0

    def test_other_entries_untouched_by_removal(self, maintainer):
        scheme, m = maintainer
        trapdoor = scheme.trapdoor(m._key, "other")
        before = m.secure_index.lookup(trapdoor.address)
        m.remove_document("d1")
        assert m.secure_index.lookup(trapdoor.address) == before

    def test_remove_unknown_raises(self, maintainer):
        _, m = maintainer
        with pytest.raises(ParameterError):
            m.remove_document("ghost")

    def test_insert_after_remove(self, maintainer):
        scheme, m = maintainer
        m.remove_document("d2")
        m.insert_document("d2", ["net"] * 4 + ["pad"] * 4)
        ranking = scheme.search_ranked(
            m.secure_index, scheme.trapdoor(m._key, "net")
        )
        assert "d2" in {r.file_id for r in ranking}
