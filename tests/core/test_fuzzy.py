"""Unit tests for ranked fuzzy keyword search."""

import pytest

from repro.core.fuzzy import (
    FuzzyRankedSSE,
    edit_distance_at_most_one,
    fuzzy_set,
)
from repro.core.params import TEST_PARAMETERS
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex


class TestFuzzySet:
    def test_example_from_construction(self):
        assert fuzzy_set("cat") == {
            "cat", "*at", "c*t", "ca*", "*cat", "c*at", "ca*t", "cat*",
        }

    def test_size_linear_in_length(self):
        # len substitutions + (len+1) insertions + the word itself.
        word = "network"
        assert len(fuzzy_set(word)) == 2 * len(word) + 2

    def test_single_character_word(self):
        assert fuzzy_set("a") == {"a", "*", "*a", "a*"}

    def test_rejects_empty_and_wildcard(self):
        with pytest.raises(ParameterError):
            fuzzy_set("")
        with pytest.raises(ParameterError):
            fuzzy_set("c*t")

    @pytest.mark.parametrize(
        "a,b",
        [
            ("cat", "cat"),      # equal
            ("cat", "cbt"),      # substitution
            ("cat", "ct"),       # deletion
            ("cat", "caat"),     # insertion
            ("cat", "cats"),     # append
            ("cat", "at"),       # head deletion
        ],
    )
    def test_distance_one_words_share_a_pattern(self, a, b):
        assert edit_distance_at_most_one(a, b)
        assert fuzzy_set(a) & fuzzy_set(b)

    @pytest.mark.parametrize(
        "a,b",
        [("cat", "dog"), ("cat", "cut!x"), ("network", "ntwrk")],
    )
    def test_distant_words_share_nothing(self, a, b):
        assert not edit_distance_at_most_one(a, b)
        assert not (fuzzy_set(a) & fuzzy_set(b))


def corpus_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["network"] * 5 + ["pad"] * 5)
    index.add_document("d2", ["network"] * 1 + ["pad"] * 9)
    index.add_document("d3", ["network"] * 3 + ["pad"] * 2)
    index.add_document("d4", ["natwork"] * 2 + ["pad"] * 3)  # a "typo doc"
    return index


@pytest.fixture(scope="module")
def built():
    scheme = FuzzyRankedSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = corpus_index()
    result = scheme.build_index(key, index)
    return scheme, key, index, result


class TestFuzzySearch:
    def test_exact_query_matches_and_ranks(self, built):
        scheme, key, _, result = built
        ranking = scheme.search_ranked(
            result.secure_index, scheme.trapdoors(key, "network")
        )
        ids = [entry.file_id for entry in ranking]
        # d4's "natwork" is distance 1 from "network": also matched.
        assert set(ids) == {"d1", "d2", "d3", "d4"}
        # Among exact matches, relevance order d3 > d1 > d2 holds.
        exact_order = [i for i in ids if i in {"d1", "d2", "d3"}]
        assert exact_order == ["d3", "d1", "d2"]

    def test_typo_query_still_finds_documents(self, built):
        scheme, key, _, result = built
        for typo in ("netwrk", "networkk", "netw0rk", "entwork"[1:]):
            ranking = scheme.search_ranked(
                result.secure_index, scheme.trapdoors(key, typo)
            )
            assert {"d1", "d2", "d3"} <= {
                entry.file_id for entry in ranking
            }, typo

    def test_distance_two_query_misses(self, built):
        scheme, key, _, result = built
        ranking = scheme.search_ranked(
            result.secure_index, scheme.trapdoors(key, "ntwrk")
        )
        assert ranking == []

    def test_results_deduplicated(self, built):
        scheme, key, _, result = built
        ranking = scheme.search_ranked(
            result.secure_index, scheme.trapdoors(key, "network")
        )
        ids = [entry.file_id for entry in ranking]
        assert len(ids) == len(set(ids))

    def test_topk_is_prefix(self, built):
        scheme, key, _, result = built
        trapdoors = scheme.trapdoors(key, "network")
        full = scheme.search_ranked(result.secure_index, trapdoors)
        top2 = scheme.search_top_k(result.secure_index, trapdoors, 2)
        assert [entry.file_id for entry in top2] == [
            entry.file_id for entry in full[:2]
        ]

    def test_empty_trapdoors_rejected(self, built):
        scheme, _, _, result = built
        with pytest.raises(ParameterError):
            scheme.search_ranked(result.secure_index, [])

    def test_storage_blowup_factor(self, built):
        """Typo tolerance costs O(len(w)) lists per keyword."""
        _, _, index, result = built
        assert result.secure_index.num_lists > index.vocabulary_size * 5
