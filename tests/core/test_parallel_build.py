"""Determinism regression tests for parallel index construction.

The build path encrypts entries with an SIV-derived nonce and pads
lists with PRF-derived dummies, so the secure index is a pure function
of (key, corpus): the same inputs must produce byte-identical
serialized indexes whether the build runs on one worker or many, and
across repeated runs.  These tests pin that property — it is what the
dynamics path (regenerate-and-replace) and the sharded persistence
round trip rely on.
"""

import pytest

from repro.core import BasicRankedSSE, EfficientRSSE, TEST_PARAMETERS
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex


class TestEfficientSchemeDeterminism:
    def test_worker_count_does_not_change_bytes(self, plain_index):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        key = scheme.keygen()
        serial = scheme.build_index(key, plain_index, workers=1)
        for workers in (2, 4):
            parallel = scheme.build_index(
                key, plain_index, workers=workers
            )
            assert (
                parallel.secure_index.serialize()
                == serial.secure_index.serialize()
            )

    def test_rebuild_reproduces_bytes(self, plain_index):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        key = scheme.keygen()
        first = scheme.build_index(key, plain_index)
        second = scheme.build_index(key, plain_index)
        assert (
            first.secure_index.serialize()
            == second.secure_index.serialize()
        )

    def test_different_keys_differ(self, plain_index):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        one = scheme.build_index(scheme.keygen(), plain_index)
        other = scheme.build_index(scheme.keygen(), plain_index)
        assert (
            one.secure_index.serialize() != other.secure_index.serialize()
        )

    def test_parallel_build_searches_identically(self, plain_index):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        key = scheme.keygen()
        built = scheme.build_index(key, plain_index, workers=4)
        term = next(iter(sorted(plain_index.vocabulary)))
        trapdoor = scheme.trapdoor(key, term)
        entries = built.secure_index.lookup(trapdoor.address)
        assert entries is not None and len(entries) > 0

    def test_rejects_bad_worker_count(self, plain_index):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        key = scheme.keygen()
        with pytest.raises(ParameterError):
            scheme.build_index(key, plain_index, workers=0)


class TestBasicSchemeDeterminism:
    def test_worker_count_does_not_change_bytes(self, plain_index):
        scheme = BasicRankedSSE(TEST_PARAMETERS)
        key = scheme.keygen()
        serial = scheme.build_index(key, plain_index, workers=1)
        parallel = scheme.build_index(key, plain_index, workers=4)
        assert parallel.serialize() == serial.serialize()

    def test_rebuild_reproduces_bytes(self, plain_index):
        scheme = BasicRankedSSE(TEST_PARAMETERS)
        key = scheme.keygen()
        assert (
            scheme.build_index(key, plain_index).serialize()
            == scheme.build_index(key, plain_index).serialize()
        )

    def test_score_ciphertexts_unlinkable_across_lists(self):
        """Equal scores in different lists keep distinct ciphertexts.

        The deterministic nonce is derived from (term, file id, score)
        — never score alone — so the semantic-security claim for
        ``E_z(S)`` survives determinism: equal plaintext scores in
        different posting lists do not produce equal score fields.
        """
        scheme = BasicRankedSSE(TEST_PARAMETERS)
        key = scheme.keygen()
        index = InvertedIndex()
        # Two documents, symmetric term profile: identical scores for
        # (alpha, d1) / (beta, d2) and for (alpha, d2) / (beta, d1).
        index.add_document("d1", ["alpha"] * 3 + ["beta"] * 3)
        index.add_document("d2", ["beta"] * 3 + ["alpha"] * 3)
        built = scheme.build_index(key, index)
        lists = {}
        for term in ("alpha", "beta"):
            trapdoor = scheme.trapdoor(key, term)
            lists[term] = built.lookup(trapdoor.address)
        flat = [entry for entries in lists.values() for entry in entries]
        assert len(set(flat)) == len(flat)
