"""Unit tests for scheme parameters."""

import pytest

from repro.core.params import PAPER_PARAMETERS, TEST_PARAMETERS, SchemeParameters
from repro.errors import ParameterError


class TestDefaults:
    def test_paper_parameters_match_worked_example(self):
        assert PAPER_PARAMETERS.score_levels == 128
        assert PAPER_PARAMETERS.range_bits == 46
        assert PAPER_PARAMETERS.range_size == 1 << 46

    def test_test_parameters_are_small(self):
        assert TEST_PARAMETERS.score_levels < PAPER_PARAMETERS.score_levels
        assert TEST_PARAMETERS.range_bits < PAPER_PARAMETERS.range_bits

    def test_score_ciphertext_width(self):
        assert PAPER_PARAMETERS.score_ciphertext_bytes == 6  # ceil(46/8)
        assert SchemeParameters(range_bits=48).score_ciphertext_bytes == 6
        assert SchemeParameters(range_bits=49).score_ciphertext_bytes == 7


class TestValidation:
    def test_rejects_small_keys(self):
        with pytest.raises(ParameterError):
            SchemeParameters(key_bytes=4)

    def test_rejects_zero_pad(self):
        with pytest.raises(ParameterError):
            SchemeParameters(zero_pad_bytes=0)

    def test_rejects_unaligned_address_bits(self):
        with pytest.raises(ParameterError):
            SchemeParameters(address_bits=100)

    def test_rejects_range_below_domain(self):
        with pytest.raises(ParameterError):
            SchemeParameters(score_levels=128, range_bits=6)

    def test_rejects_single_level(self):
        with pytest.raises(ParameterError):
            SchemeParameters(score_levels=1)

    def test_rejects_headroom_below_one(self):
        with pytest.raises(ParameterError):
            SchemeParameters(quantizer_headroom=0.9)

    def test_rejects_zero_file_id_width(self):
        with pytest.raises(ParameterError):
            SchemeParameters(file_id_bytes=0)


class TestVocabularyCheck:
    def test_accepts_normal_vocabulary(self):
        PAPER_PARAMETERS.check_vocabulary(100_000)

    def test_rejects_oversized_vocabulary(self):
        params = SchemeParameters(address_bits=16)
        with pytest.raises(ParameterError):
            params.check_vocabulary(1 << 20)

    def test_rejects_empty_vocabulary(self):
        with pytest.raises(ParameterError):
            PAPER_PARAMETERS.check_vocabulary(0)
