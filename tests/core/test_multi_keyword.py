"""Unit tests for the multi-keyword extension (future work, implemented)."""

import pytest

from repro.core.multi_keyword import (
    MultiKeywordQuery,
    MultiKeywordSearcher,
    rank_correlation,
    top_k_overlap,
    true_conjunctive_ranking,
)
from repro.core.params import TEST_PARAMETERS
from repro.core.results import RankedFile
from repro.core.rsse import EfficientRSSE
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex


def corpus_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 4 + ["sec"] * 2 + ["pad"] * 4)
    index.add_document("d2", ["net"] * 1 + ["sec"] * 5 + ["pad"] * 4)
    index.add_document("d3", ["net"] * 3 + ["pad"] * 7)
    index.add_document("d4", ["sec"] * 3 + ["pad"] * 2)
    index.add_document("d5", ["net"] * 2 + ["sec"] * 2 + ["pad"] * 2)
    return index


@pytest.fixture(scope="module")
def searchable():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = corpus_index()
    built = scheme.build_index(key, index)
    searcher = MultiKeywordSearcher(scheme)
    return scheme, key, index, built, searcher


class TestQueryConstruction:
    def test_one_trapdoor_per_term(self, searchable):
        _, key, _, _, searcher = searchable
        query = searcher.make_query(key, ["net", "sec"])
        assert len(query.trapdoors) == 2

    def test_rejects_empty_terms(self, searchable):
        _, key, _, _, searcher = searchable
        with pytest.raises(ParameterError):
            searcher.make_query(key, [])

    def test_rejects_duplicates(self, searchable):
        _, key, _, _, searcher = searchable
        with pytest.raises(ParameterError):
            searcher.make_query(key, ["net", "net"])

    def test_rejects_duplicates_after_normalization(self, searchable):
        """"Net" and "net" are the same keyword once analyzed — letting
        both through would double-count its OPM score in every sum."""
        _, key, _, _, searcher = searchable
        with pytest.raises(ParameterError, match="normalization"):
            searcher.make_query(key, ["Net", "net"])
        with pytest.raises(ParameterError, match="normalization"):
            searcher.make_query(key, ["net", "NET", "sec"])

    def test_terms_are_normalized_before_trapdooring(self, searchable):
        _, key, _, _, searcher = searchable
        cased = searcher.make_query(key, ["Net", "SEC"])
        plain = searcher.make_query(key, ["net", "sec"])
        assert cased == plain

    def test_query_validates_trapdoors(self):
        with pytest.raises(ParameterError):
            MultiKeywordQuery(trapdoors=())


class TestConjunctiveSemantics:
    def test_intersection_only(self, searchable):
        _, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net", "sec"])
        ranking = searcher.search_ranked(built.secure_index, query)
        assert {r.file_id for r in ranking} == {"d1", "d2", "d5"}

    def test_single_term_equals_single_keyword_search(self, searchable):
        scheme, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net"])
        multi = searcher.search_ranked(built.secure_index, query)
        single = scheme.search_ranked(
            built.secure_index, scheme.trapdoor(key, "net")
        )
        assert [r.file_id for r in multi] == [r.file_id for r in single]

    def test_disjoint_terms_empty(self, searchable):
        _, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net", "absent"])
        assert searcher.search_ranked(built.secure_index, query) == []

    def test_topk_prefix(self, searchable):
        _, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net", "sec"])
        full = searcher.search_ranked(built.secure_index, query)
        top2 = searcher.search_top_k(built.secure_index, query, 2)
        assert [r.file_id for r in top2] == [r.file_id for r in full[:2]]


class TestTrueRanking:
    def test_ground_truth_covers_intersection(self, searchable):
        _, _, index, _, _ = searchable
        truth = true_conjunctive_ranking(index, ["net", "sec"])
        assert {r.file_id for r in truth} == {"d1", "d2", "d5"}

    def test_empty_intersection(self, searchable):
        _, _, index, _, _ = searchable
        assert true_conjunctive_ranking(index, ["net", "absent"]) == []

    def test_rejects_empty_terms(self, searchable):
        _, _, index, _, _ = searchable
        with pytest.raises(ParameterError):
            true_conjunctive_ranking(index, [])

    def test_approximation_correlates_with_truth(self, searchable):
        _, key, index, built, searcher = searchable
        query = searcher.make_query(key, ["net", "sec"])
        approx = searcher.search_ranked(built.secure_index, query)
        truth = true_conjunctive_ranking(index, ["net", "sec"])
        assert rank_correlation(approx, truth) > 0.0


class TestRankMetrics:
    def _ranking(self, ids):
        return [
            RankedFile(rank=i, file_id=f, score=float(-i))
            for i, f in enumerate(ids, start=1)
        ]

    def test_identical_rankings(self):
        a = self._ranking(["x", "y", "z"])
        assert rank_correlation(a, a) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        a = self._ranking(["x", "y", "z"])
        b = self._ranking(["z", "y", "x"])
        assert rank_correlation(a, b) == pytest.approx(-1.0)

    def test_single_element(self):
        a = self._ranking(["x"])
        assert rank_correlation(a, a) == 1.0

    def test_rejects_different_sets(self):
        with pytest.raises(ParameterError):
            rank_correlation(self._ranking(["x"]), self._ranking(["y"]))

    def test_topk_overlap_full(self):
        a = self._ranking(["x", "y", "z"])
        b = self._ranking(["y", "x", "z"])
        assert top_k_overlap(a, b, 2) == pytest.approx(1.0)

    def test_topk_overlap_partial(self):
        a = self._ranking(["x", "y", "z"])
        b = self._ranking(["x", "z", "y"])
        assert top_k_overlap(a, b, 2) == pytest.approx(0.5)

    def test_topk_overlap_validates_k(self):
        a = self._ranking(["x"])
        with pytest.raises(ParameterError):
            top_k_overlap(a, a, 0)

    def test_topk_overlap_empty(self):
        assert top_k_overlap([], [], 3) == 1.0
