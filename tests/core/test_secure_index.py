"""Unit tests for the secure index structure (Fig. 3)."""

import pytest

from repro.core.secure_index import (
    AddressTree,
    EntryLayout,
    SecureIndex,
    encrypt_entry,
    try_decrypt_entry,
)
from repro.crypto.symmetric import SymmetricCipher, random_bytes_like_ciphertext
from repro.errors import IndexError_, ParameterError

LAYOUT = EntryLayout(zero_pad_bytes=4, file_id_bytes=16, score_bytes=6)
LIST_KEY = b"list-key-0123456"


class TestEntryLayout:
    def test_widths(self):
        assert LAYOUT.plaintext_bytes == 26
        assert LAYOUT.ciphertext_bytes == 26 + SymmetricCipher.overhead_bytes

    def test_file_id_roundtrip(self):
        encoded = LAYOUT.encode_file_id("rfc0042")
        assert len(encoded) == 16
        assert LAYOUT.decode_file_id(encoded) == "rfc0042"

    def test_file_id_max_width(self):
        longest = "x" * 15
        assert LAYOUT.decode_file_id(LAYOUT.encode_file_id(longest)) == longest

    def test_file_id_too_long(self):
        with pytest.raises(ParameterError):
            LAYOUT.encode_file_id("x" * 16)

    def test_entry_roundtrip(self):
        plaintext = LAYOUT.encode_entry("doc1", b"\x01\x02\x03\x04\x05\x06")
        assert len(plaintext) == LAYOUT.plaintext_bytes
        file_id, score = LAYOUT.decode_entry(plaintext)
        assert file_id == "doc1"
        assert score == b"\x01\x02\x03\x04\x05\x06"

    def test_zero_marker_enforced(self):
        plaintext = bytearray(LAYOUT.encode_entry("doc1", b"\x00" * 6))
        plaintext[0] = 1
        with pytest.raises(IndexError_):
            LAYOUT.decode_entry(bytes(plaintext))

    def test_wrong_widths_rejected(self):
        with pytest.raises(ParameterError):
            LAYOUT.encode_entry("doc1", b"\x00" * 5)
        with pytest.raises(IndexError_):
            LAYOUT.decode_entry(b"\x00" * 10)

    def test_corrupt_length_byte(self):
        encoded = bytearray(LAYOUT.encode_file_id("doc1"))
        encoded[0] = 200
        with pytest.raises(IndexError_):
            LAYOUT.decode_file_id(bytes(encoded))

    def test_validates_geometry(self):
        with pytest.raises(ParameterError):
            EntryLayout(zero_pad_bytes=0, file_id_bytes=16, score_bytes=6)
        with pytest.raises(ParameterError):
            EntryLayout(zero_pad_bytes=4, file_id_bytes=0, score_bytes=6)
        with pytest.raises(ParameterError):
            EntryLayout(zero_pad_bytes=4, file_id_bytes=16, score_bytes=0)


class TestEntryEncryption:
    def test_roundtrip(self):
        entry = encrypt_entry(LAYOUT, LIST_KEY, "doc9", b"\xaa" * 6)
        decoded = try_decrypt_entry(LAYOUT, LIST_KEY, entry)
        assert decoded == ("doc9", b"\xaa" * 6)

    def test_wrong_key_returns_none(self):
        entry = encrypt_entry(LAYOUT, LIST_KEY, "doc9", b"\xaa" * 6)
        assert try_decrypt_entry(LAYOUT, b"other-key-000000", entry) is None

    def test_dummy_returns_none(self):
        dummy = random_bytes_like_ciphertext(LAYOUT.ciphertext_bytes)
        assert try_decrypt_entry(LAYOUT, LIST_KEY, dummy) is None

    def test_entry_width_fixed(self):
        short = encrypt_entry(LAYOUT, LIST_KEY, "a1", b"\x00" * 6)
        long = encrypt_entry(LAYOUT, LIST_KEY, "a-much-longer", b"\xff" * 6)
        assert len(short) == len(long) == LAYOUT.ciphertext_bytes


class TestAddressTree:
    def test_insert_and_lookup(self):
        tree = AddressTree()
        tree.insert(b"bb", [b"x"])
        tree.insert(b"aa", [b"y"])
        assert tree.lookup(b"aa") == [b"y"]
        assert tree.lookup(b"bb") == [b"x"]
        assert tree.lookup(b"cc") is None

    def test_duplicate_insert_rejected(self):
        tree = AddressTree()
        tree.insert(b"aa", [])
        with pytest.raises(IndexError_):
            tree.insert(b"aa", [])

    def test_items_in_address_order(self):
        tree = AddressTree()
        for address in [b"c", b"a", b"b"]:
            tree.insert(address, [])
        assert [address for address, _ in tree.items()] == [b"a", b"b", b"c"]

    def test_replace(self):
        tree = AddressTree()
        tree.insert(b"aa", [b"old"])
        tree.replace(b"aa", [b"new"])
        assert tree.lookup(b"aa") == [b"new"]

    def test_replace_missing_rejected(self):
        with pytest.raises(IndexError_):
            AddressTree().replace(b"aa", [])

    def test_len_and_contains(self):
        tree = AddressTree()
        tree.insert(b"aa", [])
        assert len(tree) == 1
        assert b"aa" in tree and b"bb" not in tree


class TestSecureIndex:
    def _entry(self, file_id: str = "doc1") -> bytes:
        return encrypt_entry(LAYOUT, LIST_KEY, file_id, b"\x00" * 6)

    def test_add_and_lookup(self):
        index = SecureIndex(LAYOUT)
        index.add_list(b"addr", [self._entry()])
        assert index.lookup(b"addr") is not None
        assert index.lookup(b"missing") is None
        assert index.num_lists == 1

    def test_padding_to_nu(self):
        index = SecureIndex(LAYOUT, padded_length=5)
        index.add_list(b"addr", [self._entry(), self._entry("doc2")])
        entries = index.lookup(b"addr")
        assert len(entries) == 5
        real = [
            entry
            for entry in entries
            if try_decrypt_entry(LAYOUT, LIST_KEY, entry) is not None
        ]
        assert len(real) == 2

    def test_padded_lists_all_equal_length(self):
        index = SecureIndex(LAYOUT, padded_length=4)
        index.add_list(b"a", [self._entry()])
        index.add_list(b"b", [self._entry(), self._entry("d2"), self._entry("d3")])
        assert len(index.lookup(b"a")) == len(index.lookup(b"b")) == 4

    def test_overlong_list_rejected_when_padding(self):
        index = SecureIndex(LAYOUT, padded_length=1)
        with pytest.raises(ParameterError):
            index.add_list(b"a", [self._entry(), self._entry("d2")])

    def test_wrong_entry_width_rejected(self):
        index = SecureIndex(LAYOUT)
        with pytest.raises(ParameterError):
            index.add_list(b"a", [b"short"])

    def test_replace_list(self):
        index = SecureIndex(LAYOUT)
        index.add_list(b"a", [self._entry()])
        replacement = [self._entry("other")]
        index.replace_list(b"a", replacement)
        assert index.lookup(b"a") == replacement

    def test_size_accounting(self):
        index = SecureIndex(LAYOUT)
        index.add_list(b"a", [self._entry(), self._entry("d2")])
        index.add_list(b"b", [self._entry("d3")])
        assert index.size_bytes() == 3 * LAYOUT.ciphertext_bytes
        assert index.average_list_size_bytes() == pytest.approx(
            1.5 * LAYOUT.ciphertext_bytes
        )

    def test_average_size_of_empty_index_raises(self):
        with pytest.raises(IndexError_):
            SecureIndex(LAYOUT).average_list_size_bytes()

    def test_rejects_bad_padded_length(self):
        with pytest.raises(ParameterError):
            SecureIndex(LAYOUT, padded_length=0)


class TestSerialization:
    def test_roundtrip(self):
        index = SecureIndex(LAYOUT, padded_length=3)
        index.add_list(b"\x01\x02", [
            encrypt_entry(LAYOUT, LIST_KEY, "doc1", b"\x07" * 6)
        ])
        restored = SecureIndex.deserialize(index.serialize())
        assert restored.layout == index.layout
        assert restored.padded_length == 3
        original = index.lookup(b"\x01\x02")
        assert restored.lookup(b"\x01\x02") == original
        decoded = try_decrypt_entry(LAYOUT, LIST_KEY, original[0])
        assert decoded == ("doc1", b"\x07" * 6)

    def test_rejects_garbage(self):
        with pytest.raises(IndexError_):
            SecureIndex.deserialize(b"not json at all")

    def test_rejects_missing_fields(self):
        with pytest.raises(IndexError_):
            SecureIndex.deserialize(b"{}")
