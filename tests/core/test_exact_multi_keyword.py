"""Unit tests for the exact (basic-scheme) multi-keyword client."""

import pytest

from repro.core.basic_scheme import BasicRankedSSE
from repro.core.multi_keyword import (
    ExactMultiKeywordClient,
    rank_correlation,
    true_conjunctive_ranking,
)
from repro.core.params import TEST_PARAMETERS
from repro.core.rsse import EfficientRSSE
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex


def corpus_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 4 + ["sec"] * 2 + ["pad"] * 4)
    index.add_document("d2", ["net"] * 1 + ["sec"] * 5 + ["pad"] * 4)
    index.add_document("d3", ["net"] * 3 + ["pad"] * 7)
    index.add_document("d4", ["sec"] * 3 + ["pad"] * 2)
    index.add_document("d5", ["net"] * 2 + ["sec"] * 2 + ["pad"] * 2)
    return index


@pytest.fixture(scope="module")
def deployment():
    scheme = BasicRankedSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = corpus_index()
    secure = scheme.build_index(key, index)
    client = ExactMultiKeywordClient(scheme, index.num_files)
    return scheme, key, index, secure, client


class TestExactRanking:
    def test_matches_true_equation1_exactly(self, deployment):
        _, key, index, secure, client = deployment
        ranking = client.search_ranked(key, secure, ["net", "sec"])
        truth = true_conjunctive_ranking(index, ["net", "sec"])
        assert [r.file_id for r in ranking] == [r.file_id for r in truth]
        assert rank_correlation(ranking, truth) == pytest.approx(1.0)

    def test_scores_match_equation1_values(self, deployment):
        _, key, index, secure, client = deployment
        ranking = client.search_ranked(key, secure, ["net", "sec"])
        truth = {
            r.file_id: r.score
            for r in true_conjunctive_ranking(index, ["net", "sec"])
        }
        for entry in ranking:
            assert entry.score == pytest.approx(truth[entry.file_id])

    def test_single_term(self, deployment):
        _, key, index, secure, client = deployment
        ranking = client.search_ranked(key, secure, ["net"])
        assert {r.file_id for r in ranking} == {"d1", "d2", "d3", "d5"}

    def test_disjoint_terms_empty(self, deployment):
        _, key, _, secure, client = deployment
        assert client.search_ranked(key, secure, ["net", "absent"]) == []

    def test_validates_terms(self, deployment):
        _, key, _, secure, client = deployment
        with pytest.raises(ParameterError):
            client.search_ranked(key, secure, [])
        with pytest.raises(ParameterError):
            client.search_ranked(key, secure, ["net", "net"])


class TestConstruction:
    def test_rejects_efficient_scheme(self):
        with pytest.raises(ParameterError):
            ExactMultiKeywordClient(EfficientRSSE(TEST_PARAMETERS), 10)

    def test_rejects_bad_collection_size(self):
        with pytest.raises(ParameterError):
            ExactMultiKeywordClient(BasicRankedSSE(TEST_PARAMETERS), 0)
