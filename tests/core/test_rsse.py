"""Unit tests for the efficient RSSE scheme (Section IV)."""

import pytest

from repro.core.params import SchemeParameters, TEST_PARAMETERS
from repro.core.rsse import EfficientRSSE
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import ScoreQuantizer, single_keyword_score


def tiny_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 5 + ["pad"] * 5)
    index.add_document("d2", ["net"] * 1 + ["pad"] * 9)
    index.add_document("d3", ["net"] * 3 + ["pad"] * 2)
    index.add_document("d4", ["other"] * 4)
    return index


@pytest.fixture(scope="module")
def built():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = tiny_index()
    result = scheme.build_index(key, index)
    return scheme, key, index, result


class TestBuildIndex:
    def test_no_padding_by_default(self, built):
        _, _, _, result = built
        assert result.secure_index.padded_length is None

    def test_one_list_per_keyword(self, built):
        _, _, index, result = built
        assert result.secure_index.num_lists == index.vocabulary_size

    def test_quantizer_fitted_and_returned(self, built):
        _, _, _, result = built
        assert result.quantizer.levels == TEST_PARAMETERS.score_levels

    def test_reusing_quantizer(self, built):
        scheme, key, index, result = built
        rebuilt = scheme.build_index(key, index, quantizer=result.quantizer)
        assert rebuilt.quantizer is result.quantizer

    def test_rejects_mismatched_quantizer(self, built):
        scheme, key, index, _ = built
        wrong = ScoreQuantizer(levels=TEST_PARAMETERS.score_levels + 1,
                               scale=1.0)
        with pytest.raises(ParameterError):
            scheme.build_index(key, index, quantizer=wrong)

    def test_rejects_empty_collection(self):
        scheme = EfficientRSSE(TEST_PARAMETERS)
        with pytest.raises(ParameterError):
            scheme.build_index(scheme.keygen(), InvertedIndex())

    def test_padding_can_be_enabled(self):
        params = SchemeParameters(
            score_levels=16, range_bits=24, pad_posting_lists=True
        )
        scheme = EfficientRSSE(params)
        key = scheme.keygen()
        result = scheme.build_index(key, tiny_index())
        assert result.secure_index.padded_length == 3


class TestServerRanking:
    def test_search_returns_posting_set(self, built):
        scheme, key, _, result = built
        matches = scheme.search(
            result.secure_index, scheme.trapdoor(key, "net")
        )
        assert {m.file_id for m in matches} == {"d1", "d2", "d3"}

    def test_ranked_order_matches_true_scores(self, built):
        scheme, key, index, result = built
        ranking = scheme.search_ranked(
            result.secure_index, scheme.trapdoor(key, "net")
        )
        assert [r.file_id for r in ranking] == ["d3", "d1", "d2"]

    def test_topk_prefix_of_full_ranking(self, built):
        scheme, key, _, result = built
        trapdoor = scheme.trapdoor(key, "net")
        full = scheme.search_ranked(result.secure_index, trapdoor)
        top2 = scheme.search_top_k(result.secure_index, trapdoor, 2)
        assert [r.file_id for r in top2] == [r.file_id for r in full[:2]]

    def test_topk_rejects_bad_k(self, built):
        scheme, key, _, result = built
        with pytest.raises(ParameterError):
            scheme.search_top_k(
                result.secure_index, scheme.trapdoor(key, "net"), 0
            )

    def test_unknown_keyword(self, built):
        scheme, key, _, result = built
        trapdoor = scheme.trapdoor(key, "absent")
        assert scheme.search_ranked(result.secure_index, trapdoor) == []

    def test_ranking_key_is_opm_value_not_score(self, built):
        scheme, key, _, result = built
        ranking = scheme.search_ranked(
            result.secure_index, scheme.trapdoor(key, "net")
        )
        # The server-side "score" is a huge OPM integer, not eq-2 float.
        assert all(isinstance(r.score, int) for r in ranking)
        assert all(r.score > 1000 for r in ranking)


class TestOpmValues:
    def test_values_within_configured_range(self, built):
        scheme, key, _, result = built
        matches = scheme.search(
            result.secure_index, scheme.trapdoor(key, "net")
        )
        for match in matches:
            assert 1 <= match.opm_value() <= TEST_PARAMETERS.range_size

    def test_order_consistent_with_quantized_levels(self, built):
        scheme, key, index, result = built
        matches = scheme.search(
            result.secure_index, scheme.trapdoor(key, "net")
        )
        for a in matches:
            for b in matches:
                level_a = result.quantizer.quantize(single_keyword_score(
                    index.term_frequency("net", a.file_id),
                    index.file_length(a.file_id),
                ))
                level_b = result.quantizer.quantize(single_keyword_score(
                    index.term_frequency("net", b.file_id),
                    index.file_length(b.file_id),
                ))
                if level_a < level_b:
                    assert a.opm_value() < b.opm_value()

    def test_per_list_keys_differ(self, built):
        scheme, key, _, _ = built
        opm_net = scheme.opm_for_term(key, "net")
        opm_other = scheme.opm_for_term(key, "other")
        # Same level maps into different buckets under different lists
        # with overwhelming probability.
        differs = any(
            opm_net.bucket(level) != opm_other.bucket(level)
            for level in range(1, TEST_PARAMETERS.score_levels + 1)
        )
        assert differs

    def test_opm_requires_owner_key(self, built):
        scheme, key, _, _ = built
        from repro.errors import CryptoError

        with pytest.raises(CryptoError):
            scheme.opm_for_term(key.trapdoor_only(), "net")


class TestUserBundleSufficiency:
    def test_trapdoor_only_bundle_can_search(self, built):
        scheme, key, _, result = built
        user_key = key.trapdoor_only()
        trapdoor = scheme.trapdoor(user_key, "net")
        ranking = scheme.search_ranked(result.secure_index, trapdoor)
        assert len(ranking) == 3
