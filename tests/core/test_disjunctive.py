"""Unit tests for disjunctive (OR) multi-keyword search."""

import hashlib

import pytest

from repro.core.multi_keyword import MultiKeywordSearcher
from repro.core.params import TEST_PARAMETERS
from repro.core.rsse import EfficientRSSE
from repro.crypto.keys import SchemeKey
from repro.ir.inverted_index import InvertedIndex


def corpus_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 4 + ["pad"] * 6)
    index.add_document("d2", ["sec"] * 5 + ["pad"] * 5)
    index.add_document("d3", ["net"] * 2 + ["sec"] * 2 + ["pad"] * 6)
    index.add_document("d4", ["other"] * 5)
    return index


def fixed_key() -> SchemeKey:
    # A pinned key instead of keygen(): the "multi-keyword matches
    # outrank single" ordering below is a statistical property of the
    # randomized per-file OPM draws (the module's rank-distortion
    # caveat), so a fresh key makes the assertion flaky.
    seed = b"disjunctive-test-key-0"
    return SchemeKey(
        x=hashlib.blake2b(seed + b"|x", digest_size=16).digest(),
        y=hashlib.blake2b(seed + b"|y", digest_size=16).digest(),
        z=hashlib.blake2b(seed + b"|z", digest_size=16).digest(),
        domain_size=TEST_PARAMETERS.score_levels,
        range_size=TEST_PARAMETERS.range_size,
    )


@pytest.fixture(scope="module")
def searchable():
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = fixed_key()
    index = corpus_index()
    built = scheme.build_index(key, index)
    return scheme, key, index, built, MultiKeywordSearcher(scheme)


class TestDisjunctiveSemantics:
    def test_union_of_match_sets(self, searchable):
        _, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net", "sec"])
        ranking = searcher.search_ranked_disjunctive(
            built.secure_index, query
        )
        assert {entry.file_id for entry in ranking} == {"d1", "d2", "d3"}

    def test_superset_of_conjunctive(self, searchable):
        _, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net", "sec"])
        conjunctive = {
            entry.file_id
            for entry in searcher.search_ranked(built.secure_index, query)
        }
        disjunctive = {
            entry.file_id
            for entry in searcher.search_ranked_disjunctive(
                built.secure_index, query
            )
        }
        assert conjunctive <= disjunctive
        assert conjunctive == {"d3"}

    def test_multi_keyword_matches_outrank_single(self, searchable):
        # d3 matches both keywords, so its summed OPM value exceeds any
        # single-keyword value of comparable level... not guaranteed in
        # general (OPM values are huge integers per keyword), but a file
        # matching k keywords sums k values, each >= 1: assert d3 beats
        # at least one single-keyword match here.
        _, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net", "sec"])
        ranking = searcher.search_ranked_disjunctive(
            built.secure_index, query
        )
        positions = {entry.file_id: entry.rank for entry in ranking}
        assert positions["d3"] < max(positions["d1"], positions["d2"])

    def test_single_term_disjunction_equals_single_search(self, searchable):
        scheme, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["net"])
        disjunctive = searcher.search_ranked_disjunctive(
            built.secure_index, query
        )
        single = scheme.search_ranked(
            built.secure_index, scheme.trapdoor(key, "net")
        )
        assert [entry.file_id for entry in disjunctive] == [
            entry.file_id for entry in single
        ]

    def test_all_absent_terms_empty(self, searchable):
        _, key, _, built, searcher = searchable
        query = searcher.make_query(key, ["ghost", "phantom"])
        assert (
            searcher.search_ranked_disjunctive(built.secure_index, query)
            == []
        )
