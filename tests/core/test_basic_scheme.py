"""Unit tests for the basic scheme (Section III-C, Fig. 3)."""

import pytest

from repro.core.basic_scheme import BasicRankedSSE
from repro.core.params import TEST_PARAMETERS
from repro.core.secure_index import try_decrypt_entry
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import single_keyword_score


def tiny_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 5 + ["pad"] * 5)       # high score
    index.add_document("d2", ["net"] * 1 + ["pad"] * 9)       # low score
    index.add_document("d3", ["net"] * 3 + ["pad"] * 2)       # highest score
    index.add_document("d4", ["other"] * 4)
    return index


@pytest.fixture(scope="module")
def built():
    scheme = BasicRankedSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    index = tiny_index()
    secure = scheme.build_index(key, index)
    return scheme, key, index, secure


class TestBuildIndex:
    def test_one_list_per_keyword(self, built):
        _, _, index, secure = built
        assert secure.num_lists == index.vocabulary_size

    def test_lists_padded_to_nu(self, built):
        _, _, index, secure = built
        assert secure.padded_length == index.max_posting_length() == 3
        for _, entries in secure.items():
            assert len(entries) == 3

    def test_entries_decrypt_only_with_right_list_key(self, built):
        scheme, key, _, secure = built
        trapdoor = scheme.trapdoor(key, "net")
        wrong = scheme.trapdoor(key, "other")
        entries = secure.lookup(trapdoor.address)
        valid_with_right = [
            try_decrypt_entry(secure.layout, trapdoor.list_key, entry)
            for entry in entries
        ]
        valid_with_wrong = [
            try_decrypt_entry(secure.layout, wrong.list_key, entry)
            for entry in entries
        ]
        assert sum(1 for v in valid_with_right if v) == 3
        assert sum(1 for v in valid_with_wrong if v) == 0

    def test_rejects_empty_collection(self):
        scheme = BasicRankedSSE(TEST_PARAMETERS)
        with pytest.raises(ParameterError):
            scheme.build_index(scheme.keygen(), InvertedIndex())


class TestSearch:
    def test_returns_exactly_the_posting_set(self, built):
        scheme, key, index, secure = built
        matches = scheme.search(secure, scheme.trapdoor(key, "net"))
        assert {m.file_id for m in matches} == {"d1", "d2", "d3"}

    def test_unknown_keyword_empty(self, built):
        scheme, key, _, secure = built
        assert scheme.search(secure, scheme.trapdoor(key, "absent")) == []

    def test_server_side_scores_are_ciphertexts(self, built):
        scheme, key, _, secure = built
        matches = scheme.search(secure, scheme.trapdoor(key, "net"))
        # Semantically secure: same plaintext would differ; here just
        # check the fields are opaque blobs of cipher length.
        for match in matches:
            assert len(match.score_field) == 8 + 32  # double + overhead


class TestClientRanking:
    def test_scores_decrypt_to_equation2(self, built):
        scheme, key, index, secure = built
        matches = scheme.search(secure, scheme.trapdoor(key, "net"))
        for match in matches:
            expected = single_keyword_score(
                index.term_frequency("net", match.file_id),
                index.file_length(match.file_id),
            )
            assert scheme.decrypt_score(key, match) == pytest.approx(expected)

    def test_rank_matches_orders_by_true_score(self, built):
        scheme, key, _, secure = built
        matches = scheme.search(secure, scheme.trapdoor(key, "net"))
        ranking = scheme.rank_matches(key, matches)
        # d3: (1+ln3)/5 = 0.42; d1: (1+ln5)/10 = 0.26; d2: 1/10 = 0.1
        assert [r.file_id for r in ranking] == ["d3", "d1", "d2"]
        assert [r.rank for r in ranking] == [1, 2, 3]

    def test_user_top_k(self, built):
        scheme, key, _, secure = built
        matches = scheme.search(secure, scheme.trapdoor(key, "net"))
        top = scheme.user_top_k(key, matches, 2)
        assert [r.file_id for r in top] == ["d3", "d1"]

    def test_top_k_larger_than_matches(self, built):
        scheme, key, _, secure = built
        matches = scheme.search(secure, scheme.trapdoor(key, "net"))
        assert len(scheme.user_top_k(key, matches, 100)) == 3

    def test_user_bundle_can_rank(self, built):
        # Basic scheme users hold z, so ranking with the full bundle
        # equals ranking with an owner bundle.
        scheme, key, _, secure = built
        matches = scheme.search(secure, scheme.trapdoor(key, "net"))
        assert scheme.rank_matches(key, matches) == scheme.rank_matches(
            key, matches
        )


class TestSecurityShape:
    def test_dummy_entries_not_returned(self, built):
        scheme, key, index, secure = built
        # "other" has 1 real entry but lists are padded to 3.
        matches = scheme.search(secure, scheme.trapdoor(key, "other"))
        assert len(matches) == 1

    def test_equal_entry_sizes_across_lists(self, built):
        _, _, _, secure = built
        sizes = {
            len(entry)
            for _, entries in secure.items()
            for entry in entries
        }
        assert len(sizes) == 1
