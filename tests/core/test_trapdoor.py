"""Unit tests for trapdoor generation."""

import pytest

from repro.core.trapdoor import Trapdoor, generate_trapdoor
from repro.crypto.keys import keygen
from repro.errors import ParameterError


class TestGenerateTrapdoor:
    def test_shape(self):
        trapdoor = generate_trapdoor(keygen(), "network")
        assert len(trapdoor.address) == 20  # 160 bits
        assert len(trapdoor.list_key) == 16

    def test_deterministic_search_pattern(self):
        # Same keyword -> same trapdoor: this IS the search pattern
        # leakage the paper accepts.
        key = keygen()
        assert generate_trapdoor(key, "network") == generate_trapdoor(
            key, "network"
        )

    def test_distinct_keywords(self):
        key = keygen()
        a = generate_trapdoor(key, "network")
        b = generate_trapdoor(key, "protocol")
        assert a.address != b.address
        assert a.list_key != b.list_key

    def test_distinct_keys(self):
        a = generate_trapdoor(keygen(), "network")
        b = generate_trapdoor(keygen(), "network")
        assert a.address != b.address

    def test_z_not_involved(self):
        # Users without z must produce identical trapdoors to the owner.
        key = keygen()
        assert generate_trapdoor(key, "w") == generate_trapdoor(
            key.trapdoor_only(), "w"
        )

    def test_custom_address_width(self):
        trapdoor = generate_trapdoor(keygen(), "w", address_bits=256)
        assert len(trapdoor.address) == 32

    def test_rejects_empty_keyword(self):
        with pytest.raises(ParameterError):
            generate_trapdoor(keygen(), "")


class TestTrapdoorSerialization:
    def test_roundtrip(self):
        trapdoor = generate_trapdoor(keygen(), "network")
        assert Trapdoor.deserialize(trapdoor.serialize()) == trapdoor

    def test_roundtrip_with_wide_address(self):
        trapdoor = generate_trapdoor(keygen(), "w", address_bits=512)
        assert Trapdoor.deserialize(trapdoor.serialize()) == trapdoor

    def test_rejects_truncated(self):
        with pytest.raises(ParameterError):
            Trapdoor.deserialize(b"\x00")

    def test_validates_fields(self):
        with pytest.raises(ParameterError):
            Trapdoor(address=b"", list_key=b"k" * 16)
        with pytest.raises(ParameterError):
            Trapdoor(address=b"a" * 20, list_key=b"")
