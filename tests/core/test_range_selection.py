"""Unit tests for Section IV-C range-size selection (equations 3-4)."""

import pytest

from repro.core.range_selection import (
    BOUND_VARIANTS,
    hgd_round_bound,
    lhs,
    minimal_range_bits,
    rhs,
    satisfies,
    selection_series,
)
from repro.errors import ParameterError

#: The paper's worked example inputs: max/lambda for "network", M = 128.
PAPER_RATIO = 0.06
PAPER_M = 128


class TestHgdRoundBound:
    def test_paper_bound_at_m_128(self):
        assert hgd_round_bound(128, "5logM+12") == pytest.approx(47.0)

    def test_loose_bounds(self):
        assert hgd_round_bound(128, "5logM") == pytest.approx(35.0)
        assert hgd_round_bound(128, "4logM") == pytest.approx(28.0)

    def test_rejects_unknown_variant(self):
        with pytest.raises(ParameterError):
            hgd_round_bound(128, "6logM")

    def test_rejects_tiny_domain(self):
        with pytest.raises(ParameterError):
            hgd_round_bound(1)


class TestLhsRhs:
    def test_lhs_halves_per_extra_bit(self):
        a = lhs(40, PAPER_RATIO, PAPER_M)
        b = lhs(41, PAPER_RATIO, PAPER_M)
        assert a == pytest.approx(2 * b)

    def test_lhs_scales_with_ratio(self):
        assert lhs(40, 0.12, PAPER_M) == pytest.approx(
            2 * lhs(40, 0.06, PAPER_M)
        )

    def test_rhs_decreasing_in_k(self):
        values = [rhs(k) for k in range(4, 60)]
        assert values == sorted(values, reverse=True)

    def test_rhs_between_zero_and_one(self):
        for k in (2, 10, 46, 100):
            assert 0 < rhs(k) < 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            lhs(0, PAPER_RATIO, PAPER_M)
        with pytest.raises(ParameterError):
            lhs(40, 0.0, PAPER_M)
        with pytest.raises(ParameterError):
            rhs(1)
        with pytest.raises(ParameterError):
            rhs(40, c=1.0)
        with pytest.raises(ParameterError):
            rhs(40, log_base=1.0)


class TestMinimalRangeBits:
    def test_worked_example_crossovers_are_ordered_like_the_paper(self):
        """Paper reports |R| = 2^46, 2^34, 2^27 for the three bounds.

        The absolute offset depends on the unspecified log base of
        eq. 4's RHS (see DESIGN.md); the *spacing* between variants is
        base-independent and must match the bound-exponent deltas the
        paper shows (12 bits and 7-8 bits).
        """
        tight = minimal_range_bits(PAPER_RATIO, PAPER_M, variant="5logM+12")
        loose5 = minimal_range_bits(PAPER_RATIO, PAPER_M, variant="5logM")
        loose4 = minimal_range_bits(PAPER_RATIO, PAPER_M, variant="4logM")
        assert tight > loose5 > loose4
        assert tight - loose5 == 12
        assert 7 <= loose5 - loose4 <= 8

    def test_crossover_near_paper_value(self):
        tight = minimal_range_bits(PAPER_RATIO, PAPER_M)
        assert 44 <= tight <= 52  # paper: 46 (log-base dependent)

    def test_minimal_is_minimal(self):
        bits = minimal_range_bits(PAPER_RATIO, PAPER_M)
        assert satisfies(bits, PAPER_RATIO, PAPER_M)
        assert not satisfies(bits - 1, PAPER_RATIO, PAPER_M)

    def test_higher_ratio_needs_larger_range(self):
        assert minimal_range_bits(0.5, PAPER_M) > minimal_range_bits(
            0.01, PAPER_M
        )

    def test_larger_domain_needs_larger_range(self):
        assert minimal_range_bits(PAPER_RATIO, 256) > minimal_range_bits(
            PAPER_RATIO, 64
        )

    def test_everything_above_minimum_satisfies(self):
        bits = minimal_range_bits(PAPER_RATIO, PAPER_M)
        for extra in range(1, 10):
            assert satisfies(bits + extra, PAPER_RATIO, PAPER_M)

    def test_unreachable_raises(self):
        with pytest.raises(ParameterError):
            minimal_range_bits(1e9, PAPER_M, max_bits=20)


class TestSelectionSeries:
    def test_fig5_series_shape(self):
        series = selection_series(PAPER_RATIO, PAPER_M, range(10, 60))
        assert len(series) == 50
        crossing = [point.range_bits for point in series if point.admissible]
        assert crossing  # the curves do cross in this window
        assert crossing[0] == minimal_range_bits(PAPER_RATIO, PAPER_M)

    def test_admissibility_is_monotone_in_k(self):
        series = selection_series(PAPER_RATIO, PAPER_M, range(10, 70))
        flags = [point.admissible for point in series]
        assert flags == sorted(flags)  # False... then True...

    def test_all_bound_variants_supported(self):
        for variant in BOUND_VARIANTS:
            series = selection_series(
                PAPER_RATIO, PAPER_M, range(20, 30), variant=variant
            )
            assert all(point.lhs > 0 for point in series)
