"""Unit tests for per-protocol leakage accounting."""

import pytest

from repro.analysis.leakage import (
    ordered_pairs_full,
    ordered_pairs_topk,
    profile_search,
)
from repro.cloud.server import SearchObservation, ServerLog
from repro.errors import ParameterError


def make_log() -> ServerLog:
    log = ServerLog()
    log.observations.append(
        SearchObservation(
            address=b"addr1",
            matched_file_ids=("d1", "d2", "d3", "d4"),
            score_fields=(b"\x01", b"\x02", b"\x03", b"\x04"),
            returned_file_ids=("d3",),
        )
    )
    log.observations.append(
        SearchObservation(
            address=b"addr1",
            matched_file_ids=("d1", "d2", "d3", "d4"),
            score_fields=(b"\x01", b"\x02", b"\x03", b"\x04"),
            returned_file_ids=("d3", "d1"),
        )
    )
    return log


class TestOrderedPairCounts:
    def test_full_ranking_pairs(self):
        assert ordered_pairs_full(4) == 6
        assert ordered_pairs_full(0) == 0
        assert ordered_pairs_full(1) == 0

    def test_topk_pairs(self):
        assert ordered_pairs_topk(10, 3) == 21
        assert ordered_pairs_topk(10, 10) == 0
        assert ordered_pairs_topk(10, 0) == 0

    def test_topk_clamped_to_n(self):
        assert ordered_pairs_topk(5, 100) == 0

    def test_full_exceeds_topk(self):
        for n in range(2, 30):
            for k in range(1, n):
                assert ordered_pairs_full(n) >= ordered_pairs_topk(n, k)

    def test_validation(self):
        with pytest.raises(ParameterError):
            ordered_pairs_full(-1)
        with pytest.raises(ParameterError):
            ordered_pairs_topk(-1, 0)
        with pytest.raises(ParameterError):
            ordered_pairs_topk(5, -1)


class TestProfileSearch:
    def test_basic_one_round_profile(self):
        profile = profile_search(make_log(), 0, "basic-one-round")
        assert profile.ordered_pairs_learned == 0
        assert profile.score_values_seen == 0
        assert profile.access_pattern == ("d1", "d2", "d3", "d4")

    def test_basic_two_round_profile(self):
        profile = profile_search(make_log(), 0, "basic-two-round", top_k=1)
        assert profile.ordered_pairs_learned == 3  # 1 * (4-1)

    def test_rsse_profile(self):
        profile = profile_search(make_log(), 0, "rsse")
        assert profile.ordered_pairs_learned == 6  # full order
        assert profile.score_values_seen == 4

    def test_search_pattern_hits(self):
        log = make_log()
        first = profile_search(log, 0, "rsse")
        second = profile_search(log, 1, "rsse")
        assert first.search_pattern_hits == 0
        assert second.search_pattern_hits == 1

    def test_two_round_requires_topk(self):
        with pytest.raises(ParameterError):
            profile_search(make_log(), 0, "basic-two-round")

    def test_unknown_scheme(self):
        with pytest.raises(ParameterError):
            profile_search(make_log(), 0, "magic")

    def test_missing_observation(self):
        with pytest.raises(ParameterError):
            profile_search(make_log(), 9, "rsse")

    def test_leakage_ordering_matches_paper(self):
        """basic one-round < basic two-round < rsse (order leakage)."""
        log = make_log()
        one_round = profile_search(log, 0, "basic-one-round")
        two_round = profile_search(log, 0, "basic-two-round", top_k=2)
        rsse = profile_search(log, 0, "rsse")
        assert (
            one_round.ordered_pairs_learned
            < two_round.ordered_pairs_learned
            < rsse.ordered_pairs_learned
        )
