"""Unit tests for the reverse-engineering adversary (Section IV-A)."""

import random

import pytest

from repro.analysis.attacks import (
    FrequencyAttacker,
    multiplicity_profile,
    profile_distance,
    run_identification_experiment,
)
from repro.crypto.opm import OneToManyOpm
from repro.errors import ParameterError


def skewed_keyword_levels(num_keywords=6, list_length=200, seed=0):
    """Distinct skewed level distributions, one per keyword."""
    rng = random.Random(seed)
    return {
        f"kw{i}": [
            max(1, min(64, round(rng.gauss(8 + i * 9, 3 + i))))
            for _ in range(list_length)
        ]
        for i in range(num_keywords)
    }


class TestMultiplicityProfile:
    def test_sorted_descending(self):
        assert multiplicity_profile([1, 1, 1, 2, 2, 3]) == (3, 2, 1)

    def test_unique_values_all_ones(self):
        assert multiplicity_profile([5, 9, 2]) == (1, 1, 1)

    def test_invariant_under_value_relabeling(self):
        # The deterministic-OPSE weakness in one line: renaming values
        # (which is all a deterministic cipher does) keeps the profile.
        original = [1, 1, 2, 3, 3, 3]
        relabeled = [10, 10, 77, 5, 5, 5]
        assert multiplicity_profile(original) == multiplicity_profile(
            relabeled
        )

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            multiplicity_profile([])


class TestProfileDistance:
    def test_zero_for_equal(self):
        assert profile_distance((3, 2, 1), (3, 2, 1)) == 0

    def test_pads_shorter_profile(self):
        assert profile_distance((3,), (2, 1)) == 2

    def test_symmetric(self):
        assert profile_distance((4, 1), (2, 2)) == profile_distance(
            (2, 2), (4, 1)
        )


class TestFrequencyAttacker:
    def test_identifies_under_identity_encryption(self):
        background = skewed_keyword_levels()
        attacker = FrequencyAttacker(background)
        for keyword, levels in background.items():
            assert attacker.guess(levels) == keyword

    def test_rejects_empty_background(self):
        with pytest.raises(ParameterError):
            FrequencyAttacker({})


class TestIdentificationExperiment:
    def test_plaintext_scores_fully_identified(self):
        result = run_identification_experiment(
            skewed_keyword_levels(), lambda kw, level, fid: level
        )
        assert result.accuracy == 1.0

    def test_deterministic_encryption_fully_identified(self):
        # Any deterministic injective map preserves the profile.
        result = run_identification_experiment(
            skewed_keyword_levels(), lambda kw, level, fid: level * 997 + 13
        )
        assert result.accuracy == 1.0

    def test_opm_reduces_attacker_to_chance(self):
        background = skewed_keyword_levels()
        mappers = {
            keyword: OneToManyOpm(
                keyword.encode() * 4, 64, 1 << 40
            )
            for keyword in background
        }
        result = run_identification_experiment(
            background,
            lambda kw, level, fid: mappers[kw].map_score(level, fid),
        )
        # All profiles collapse to all-ones; ties break alphabetically,
        # so exactly one "hit" (the alphabetically first keyword).
        assert result.correct <= 1
        assert result.accuracy <= result.chance + 1e-9

    def test_equal_length_subsampling(self):
        background = {
            "long": [1] * 500,
            "short": [2] * 50,
        }
        result = run_identification_experiment(
            background, lambda kw, level, fid: level, sample_length=25
        )
        assert result.total == 2

    def test_rejects_empty_inputs(self):
        with pytest.raises(ParameterError):
            run_identification_experiment({}, lambda kw, level, fid: level)

    def test_chance_level(self):
        result = run_identification_experiment(
            skewed_keyword_levels(num_keywords=4),
            lambda kw, level, fid: level,
        )
        assert result.chance == pytest.approx(0.25)
