"""Unit tests for the window one-wayness experiments."""

import pytest

from repro.analysis.onewayness import (
    ciphertext_position_estimate,
    ordered_pair_advantage,
    window_onewayness_experiment,
)
from repro.crypto.opm import OneToManyOpm
from repro.errors import ParameterError

DOMAIN = 64
RANGE = 1 << 30


@pytest.fixture(scope="module")
def opm():
    return OneToManyOpm(b"ow-test-key-0000", DOMAIN, RANGE)


class TestPositionEstimate:
    def test_endpoints(self):
        assert ciphertext_position_estimate(1, 64, 1 << 20) == 1
        assert ciphertext_position_estimate(1 << 20, 64, 1 << 20) == 64

    def test_midpoint(self):
        estimate = ciphertext_position_estimate(1 << 19, 64, 1 << 20)
        assert 31 <= estimate <= 33

    def test_clamped_to_domain(self):
        assert 1 <= ciphertext_position_estimate(5, 64, 1 << 20) <= 64

    def test_validates(self):
        with pytest.raises(ParameterError):
            ciphertext_position_estimate(0, 64, 1 << 20)
        with pytest.raises(ParameterError):
            ciphertext_position_estimate((1 << 20) + 1, 64, 1 << 20)


class TestWindowExperiment:
    def test_identity_mapping_fully_invertible(self):
        # A (hypothetical) scheme mapping level i to the midpoint of
        # its proportional slice is perfectly interpolable.
        def transparent(level, _file_id):
            return (2 * level - 1) * (RANGE // (2 * DOMAIN))

        result = window_onewayness_experiment(
            transparent, list(range(1, DOMAIN + 1)), DOMAIN, RANGE, window=0
        )
        assert result.success_rate == 1.0
        assert result.advantage > 0.9

    def test_opm_interpolation_beats_blind_guessing_mildly(self, opm):
        # Order-preservation necessarily leaks approximate position,
        # so the adversary outperforms the blind baseline...
        result = window_onewayness_experiment(
            lambda level, fid: opm.map_score(level, fid),
            list(range(1, DOMAIN + 1)) * 4,
            DOMAIN,
            RANGE,
            window=4,
        )
        assert result.advantage > 0.0

    def test_opm_exact_recovery_rare(self, opm):
        # ...but exact recovery (window 0) stays far below certainty:
        # bucket boundaries are key-random, not proportional.
        result = window_onewayness_experiment(
            lambda level, fid: opm.map_score(level, fid),
            list(range(1, DOMAIN + 1)) * 4,
            DOMAIN,
            RANGE,
            window=0,
        )
        assert result.success_rate < 0.5

    def test_baseline_formula(self, opm):
        result = window_onewayness_experiment(
            lambda level, fid: opm.map_score(level, fid),
            [1, 2, 3],
            DOMAIN,
            RANGE,
            window=3,
        )
        assert result.baseline == pytest.approx(7 / DOMAIN)

    def test_window_covering_domain_saturates(self, opm):
        result = window_onewayness_experiment(
            lambda level, fid: opm.map_score(level, fid),
            [1, 32, 64],
            DOMAIN,
            RANGE,
            window=DOMAIN,
        )
        assert result.success_rate == 1.0
        assert result.baseline == 1.0
        assert result.advantage == pytest.approx(0.0)

    def test_validates(self, opm):
        encryptor = lambda level, fid: opm.map_score(level, fid)
        with pytest.raises(ParameterError):
            window_onewayness_experiment(encryptor, [], DOMAIN, RANGE)
        with pytest.raises(ParameterError):
            window_onewayness_experiment(
                encryptor, [1], DOMAIN, RANGE, window=-1
            )
        with pytest.raises(ParameterError):
            window_onewayness_experiment(encryptor, [0], DOMAIN, RANGE)
        with pytest.raises(ParameterError):
            window_onewayness_experiment(encryptor, [1], DOMAIN, 2)


class TestOrderedPairAdvantage:
    def test_order_always_visible_for_opm(self, opm):
        advantage = ordered_pair_advantage(
            lambda level, fid: opm.map_score(level, fid), 10, 50
        )
        assert advantage == 1.0

    def test_random_encryptor_near_half(self):
        import random

        rng = random.Random(4)

        def scrambled(_level, _fid):
            return rng.randint(1, RANGE)

        advantage = ordered_pair_advantage(scrambled, 10, 50, trials=200)
        assert 0.35 < advantage < 0.65

    def test_validates(self, opm):
        encryptor = lambda level, fid: opm.map_score(level, fid)
        with pytest.raises(ParameterError):
            ordered_pair_advantage(encryptor, 5, 5)
        with pytest.raises(ParameterError):
            ordered_pair_advantage(encryptor, 1, 2, trials=0)
