"""Unit tests for the Fig. 4/6 histogram methodology."""

import pytest

from repro.analysis.histogram import (
    equal_width_histogram,
    histogram_summary,
    render_histogram,
)
from repro.errors import ParameterError


class TestEqualWidthHistogram:
    def test_counts_sum_to_input_size(self):
        counts = equal_width_histogram(range(100), bins=10)
        assert sum(counts) == 100

    def test_uniform_values_spread(self):
        counts = equal_width_histogram(range(100), bins=10, low=0, high=100)
        assert counts == [10] * 10

    def test_top_edge_inclusive(self):
        counts = equal_width_histogram([0, 5, 10], bins=2, low=0, high=10)
        # Bin edges at [0, 5), [5, 10]: the top edge lands in the last bin.
        assert counts == [1, 2]

    def test_explicit_range(self):
        counts = equal_width_histogram([1, 2], bins=4, low=0, high=8)
        # Width 2: value 1 -> bin 0, value 2 -> bin 1 (left-closed bins).
        assert counts == [1, 1, 0, 0]

    def test_single_point_range(self):
        counts = equal_width_histogram([5, 5, 5], bins=4)
        assert counts == [3, 0, 0, 0]

    def test_128_bins_like_the_paper(self):
        counts = equal_width_histogram(range(1, 129), bins=128, low=1, high=128)
        assert len(counts) == 128
        assert all(count == 1 for count in counts)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            equal_width_histogram([])

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ParameterError):
            equal_width_histogram([5], bins=2, low=0, high=4)

    def test_rejects_bad_bins(self):
        with pytest.raises(ParameterError):
            equal_width_histogram([1], bins=0)

    def test_rejects_inverted_range(self):
        with pytest.raises(ParameterError):
            equal_width_histogram([1], bins=2, low=5, high=3)


class TestRenderHistogram:
    def test_contains_counts(self):
        text = render_histogram([3, 0, 7])
        assert " 3" in text and " 7" in text

    def test_line_per_bin(self):
        text = render_histogram([1, 2, 3, 4])
        assert len(text.splitlines()) == 4

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            render_histogram([])

    def test_all_zero_histogram_renders(self):
        text = render_histogram([0, 0])
        assert len(text.splitlines()) == 2


class TestHistogramSummary:
    def test_fields(self):
        summary = histogram_summary([5, 0, 5, 10])
        assert summary["bins"] == 4
        assert summary["total"] == 20
        assert summary["peak"] == 10
        assert summary["nonzero_bins"] == 3
        assert summary["peak_fraction"] == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            histogram_summary([])
