"""Unit tests for distribution-flatness metrics."""

import random

import pytest

from repro.analysis.flatness import (
    duplicate_profile,
    flatness_report,
    ks_distance_to_uniform,
)
from repro.errors import ParameterError


class TestDuplicateProfile:
    def test_counts(self):
        profile = duplicate_profile([1, 1, 2, 3, 3, 3])
        assert profile == {1: 2, 2: 1, 3: 3}

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            duplicate_profile([])


class TestKsDistance:
    def test_uniform_sample_is_close(self):
        rng = random.Random(0)
        values = [rng.randint(0, 10_000) for _ in range(2000)]
        assert ks_distance_to_uniform(values, 0, 10_000) < 0.05

    def test_point_mass_is_far(self):
        assert ks_distance_to_uniform([0] * 100, 0, 10_000) > 0.9

    def test_skewed_sample_detected(self):
        rng = random.Random(1)
        values = [int(abs(rng.gauss(0, 500))) for _ in range(1000)]
        assert ks_distance_to_uniform(values, 0, 10_000) > 0.5

    def test_validates(self):
        with pytest.raises(ParameterError):
            ks_distance_to_uniform([], 0, 1)
        with pytest.raises(ParameterError):
            ks_distance_to_uniform([1], 5, 5)


class TestFlatnessReport:
    def test_flat_values(self):
        rng = random.Random(2)
        values = [rng.randint(1, 1 << 30) for _ in range(1000)]
        report = flatness_report(values, 1, 1 << 30)
        assert not report.has_duplicates
        assert report.ks_to_uniform < 0.06
        assert report.normalized_entropy > 0.9
        assert report.peak_to_average < 3.0

    def test_peaky_values(self):
        values = [500] * 900 + list(range(1, 101))
        report = flatness_report(values, 1, 1 << 20)
        assert report.has_duplicates
        assert report.max_duplicates == 900
        assert report.ks_to_uniform > 0.5
        assert report.normalized_entropy < 0.5

    def test_counts(self):
        report = flatness_report([1, 1, 2], 1, 100)
        assert report.count == 3
        assert report.distinct == 2
