"""Unit tests for min-entropy tools."""

import math
from collections import Counter

import pytest

from repro.analysis.entropy import (
    has_high_min_entropy,
    high_min_entropy_threshold,
    min_entropy,
    min_entropy_of_values,
    shannon_entropy,
)
from repro.errors import ParameterError


class TestMinEntropy:
    def test_uniform_distribution(self):
        distribution = Counter({i: 1 for i in range(16)})
        assert min_entropy(distribution) == pytest.approx(4.0)

    def test_point_mass_is_zero(self):
        assert min_entropy(Counter({"a": 100})) == pytest.approx(0.0)

    def test_skewed_distribution(self):
        distribution = Counter({"a": 3, "b": 1})
        assert min_entropy(distribution) == pytest.approx(-math.log2(0.75))

    def test_from_values(self):
        assert min_entropy_of_values([1, 2, 3, 4]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            min_entropy(Counter())
        with pytest.raises(ParameterError):
            min_entropy_of_values([])

    def test_rejects_negative_counts(self):
        with pytest.raises(ParameterError):
            min_entropy(Counter({"a": -1, "b": 2}))


class TestHighMinEntropy:
    def test_threshold_formula(self):
        assert high_min_entropy_threshold(46, c=1.1) == pytest.approx(
            math.log2(46) ** 1.1
        )

    def test_threshold_grows_with_c(self):
        assert high_min_entropy_threshold(46, 1.5) > high_min_entropy_threshold(
            46, 1.1
        )

    def test_flat_distribution_passes(self):
        distribution = Counter({i: 1 for i in range(1000)})
        assert has_high_min_entropy(distribution, state_bits=46)

    def test_peaky_distribution_fails(self):
        distribution = Counter({0: 1000, 1: 1})
        assert not has_high_min_entropy(distribution, state_bits=46)

    def test_validates_parameters(self):
        with pytest.raises(ParameterError):
            high_min_entropy_threshold(1)
        with pytest.raises(ParameterError):
            high_min_entropy_threshold(46, c=1.0)


class TestShannonEntropy:
    def test_uniform(self):
        assert shannon_entropy(Counter({i: 5 for i in range(8)})) == (
            pytest.approx(3.0)
        )

    def test_point_mass(self):
        assert shannon_entropy(Counter({"a": 42})) == pytest.approx(0.0)

    def test_at_least_min_entropy(self):
        distribution = Counter({"a": 5, "b": 3, "c": 1})
        assert shannon_entropy(distribution) >= min_entropy(distribution)

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            shannon_entropy(Counter())
