"""Unit tests for quantization retrieval-quality metrics."""

import pytest

from repro.analysis.retrieval_quality import (
    precision_at_k,
    quality_over_keywords,
    quantized_ranking_quality,
)
from repro.core.results import RankedFile
from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import ScoreQuantizer


def ranking(ids):
    return [
        RankedFile(rank=position, file_id=file_id, score=float(-position))
        for position, file_id in enumerate(ids, start=1)
    ]


def spread_index() -> InvertedIndex:
    """Ten files with strictly distinct scores for 'hot'."""
    index = InvertedIndex()
    for i in range(1, 11):
        index.add_document(f"d{i}", ["hot"] * i + ["pad"] * (30 - i))
    return index


class TestPrecisionAtK:
    def test_identical_rankings(self):
        a = ranking(["x", "y", "z"])
        assert precision_at_k(a, a, 2) == 1.0

    def test_disjoint_topk(self):
        a = ranking(["a", "b", "c", "d"])
        b = ranking(["c", "d", "a", "b"])
        assert precision_at_k(a, b, 2) == 0.0

    def test_partial_overlap(self):
        a = ranking(["a", "b", "c"])
        b = ranking(["a", "c", "b"])
        assert precision_at_k(a, b, 2) == 0.5

    def test_k_beyond_length_uses_full_list(self):
        a = ranking(["a", "b"])
        b = ranking(["b", "a"])
        assert precision_at_k(a, b, 10) == 1.0

    def test_empty_rankings(self):
        assert precision_at_k([], [], 5) == 1.0

    def test_validates_k(self):
        with pytest.raises(ParameterError):
            precision_at_k([], [], 0)


class TestQuantizedRankingQuality:
    def test_fine_quantizer_preserves_order(self):
        index = spread_index()
        quantizer = ScoreQuantizer(levels=4096, scale=0.2)
        report = quantized_ranking_quality(index, "hot", quantizer)
        assert report.kendall_tau == pytest.approx(1.0)
        assert report.precision_at_5 == 1.0

    def test_single_level_quantizer_destroys_order(self):
        index = spread_index()
        # levels=2 with huge scale: everything lands on level 1.
        quantizer = ScoreQuantizer(levels=2, scale=1e9)
        report = quantized_ranking_quality(index, "hot", quantizer)
        assert report.kendall_tau < 0.5

    def test_quality_monotone_in_levels(self):
        index = spread_index()
        taus = []
        for levels in (2, 8, 64, 1024):
            quantizer = ScoreQuantizer(levels=levels, scale=0.2)
            taus.append(
                quantized_ranking_quality(index, "hot", quantizer).kendall_tau
            )
        assert taus == sorted(taus)

    def test_unknown_term_raises(self):
        quantizer = ScoreQuantizer(levels=16, scale=1.0)
        with pytest.raises(ParameterError):
            quantized_ranking_quality(spread_index(), "zzz", quantizer)

    def test_match_count_reported(self):
        quantizer = ScoreQuantizer(levels=128, scale=0.2)
        report = quantized_ranking_quality(spread_index(), "hot", quantizer)
        assert report.matches == 10


class TestWorkloadQuality:
    def test_averages_over_terms(self):
        index = spread_index()
        quality = quality_over_keywords(index, ["hot", "pad"], levels=256)
        assert quality.keywords == 2
        assert 0.0 <= quality.mean_precision_at_10 <= 1.0
        assert quality.worst_precision_at_10 <= quality.mean_precision_at_10

    def test_finer_levels_do_not_hurt(self):
        index = spread_index()
        coarse = quality_over_keywords(index, ["hot"], levels=4)
        fine = quality_over_keywords(index, ["hot"], levels=1024)
        assert fine.mean_tau >= coarse.mean_tau

    def test_validates_terms(self):
        with pytest.raises(ParameterError):
            quality_over_keywords(spread_index(), [], levels=16)
