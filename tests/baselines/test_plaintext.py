"""Unit tests for the plaintext ranked-search baseline."""

from repro.baselines.plaintext import PlaintextRankedSearch
from repro.ir.inverted_index import InvertedIndex


def build_index() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["net"] * 5 + ["pad"] * 5)
    index.add_document("d2", ["net"] * 1 + ["pad"] * 9)
    index.add_document("d3", ["net"] * 3 + ["pad"] * 2)
    return index


class TestPlaintextSearch:
    def test_full_ranking(self):
        search = PlaintextRankedSearch(build_index())
        ranking = search.search_ranked("net")
        assert [r.file_id for r in ranking] == ["d3", "d1", "d2"]

    def test_topk_prefix(self):
        search = PlaintextRankedSearch(build_index())
        assert [r.file_id for r in search.search_top_k("net", 2)] == [
            "d3", "d1",
        ]

    def test_unknown_term(self):
        search = PlaintextRankedSearch(build_index())
        assert search.search_ranked("zzz") == []

    def test_scores_are_true_floats(self):
        search = PlaintextRankedSearch(build_index())
        ranking = search.search_ranked("net")
        assert all(isinstance(r.score, float) for r in ranking)
        assert ranking[0].score > ranking[-1].score
