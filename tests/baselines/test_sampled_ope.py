"""Unit tests for the sampling-trained OPE baseline ([16] style)."""

import random

import pytest

from repro.baselines.sampled_ope import SampledOpeMapper
from repro.errors import ParameterError

KEY = b"sampled-ope-key0"


def gaussian_levels(mu, sigma, count, seed=0, domain=64):
    rng = random.Random(seed)
    return [
        max(1, min(domain, round(rng.gauss(mu, sigma)))) for _ in range(count)
    ]


class TestFit:
    def test_intervals_ordered_and_contiguous(self):
        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(20, 5, 500), 64, 1 << 20
        )
        previous_high = 0
        for level in range(1, 65):
            low, high = mapper.interval(level)
            assert low == previous_high + 1
            assert high >= low
            previous_high = high
        assert previous_high == 1 << 20

    def test_frequent_levels_get_wide_intervals(self):
        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(20, 3, 1000), 64, 1 << 20
        )
        _, common_high = mapper.interval(20)
        common_low, _ = mapper.interval(20)
        rare_low, rare_high = mapper.interval(60)
        assert (common_high - common_low) > 10 * (rare_high - rare_low)

    def test_unseen_levels_still_mappable(self):
        # Smoothing: level 64 never sampled but still has an interval.
        mapper = SampledOpeMapper.fit(KEY, [10] * 100, 64, 1 << 20)
        low, high = mapper.interval(64)
        assert high >= low >= 1

    def test_rejects_empty_sample(self):
        with pytest.raises(ParameterError):
            SampledOpeMapper.fit(KEY, [], 64, 1 << 20)

    def test_rejects_out_of_domain_sample(self):
        with pytest.raises(ParameterError):
            SampledOpeMapper.fit(KEY, [65], 64, 1 << 20)

    def test_rejects_range_below_domain(self):
        with pytest.raises(ParameterError):
            SampledOpeMapper.fit(KEY, [1], 64, 32)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ParameterError):
            SampledOpeMapper.fit(KEY, [1], 64, 1 << 20, smoothing=0)


class TestMapping:
    def test_values_in_interval(self):
        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(20, 5, 500), 64, 1 << 20
        )
        for level in (1, 20, 40, 64):
            low, high = mapper.interval(level)
            for i in range(10):
                assert low <= mapper.map_score(level, f"f{i}") <= high

    def test_order_preserved(self):
        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(20, 5, 500), 64, 1 << 20
        )
        for a, b in [(1, 2), (19, 20), (40, 64)]:
            assert mapper.map_score(a, "x") < mapper.map_score(b, "y")

    def test_deterministic_per_file_one_to_many_across(self):
        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(20, 5, 500), 64, 1 << 20
        )
        assert mapper.map_score(20, "f") == mapper.map_score(20, "f")
        values = {mapper.map_score(20, f"f{i}") for i in range(20)}
        assert len(values) > 1

    def test_interval_validates_level(self):
        mapper = SampledOpeMapper.fit(KEY, [1], 8, 100)
        with pytest.raises(ParameterError):
            mapper.interval(0)
        with pytest.raises(ParameterError):
            mapper.interval(9)

    def test_uniformizes_training_distribution(self):
        from repro.analysis.flatness import ks_distance_to_uniform

        levels = gaussian_levels(20, 5, 3000, seed=4)
        mapper = SampledOpeMapper.fit(KEY, levels, 64, 1 << 20)
        values = [
            mapper.map_score(level, f"f{i}") for i, level in enumerate(levels)
        ]
        assert ks_distance_to_uniform(values, 1, 1 << 20) < 0.1

    def test_fails_to_uniformize_drifted_distribution(self):
        """The [16] failure mode: drifted inputs bunch up in the range."""
        from repro.analysis.flatness import ks_distance_to_uniform

        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(15, 4, 2000, seed=5), 64, 1 << 20
        )
        drifted = gaussian_levels(50, 4, 2000, seed=6)
        values = [
            mapper.map_score(level, f"f{i}") for i, level in enumerate(drifted)
        ]
        assert ks_distance_to_uniform(values, 1, 1 << 20) > 0.5


class TestDriftDetection:
    def test_same_distribution_small_drift(self):
        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(20, 5, 2000, seed=7), 64, 1 << 20
        )
        fresh = gaussian_levels(20, 5, 2000, seed=8)
        assert mapper.distribution_drift(fresh) < 0.1
        assert not mapper.needs_rebuild(fresh)

    def test_shifted_distribution_large_drift(self):
        mapper = SampledOpeMapper.fit(
            KEY, gaussian_levels(15, 4, 2000, seed=9), 64, 1 << 20
        )
        drifted = gaussian_levels(50, 4, 2000, seed=10)
        assert mapper.distribution_drift(drifted) > 0.5
        assert mapper.needs_rebuild(drifted)

    def test_rejects_empty_update(self):
        mapper = SampledOpeMapper.fit(KEY, [1], 8, 100)
        with pytest.raises(ParameterError):
            mapper.distribution_drift([])
