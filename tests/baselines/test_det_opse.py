"""Unit tests for the deterministic-OPSE scoring strawman."""

import pytest

from repro.baselines.det_opse import DeterministicOpseScoring
from repro.errors import ParameterError

KEY = b"det-opse-key-000"


class TestDeterministicOpseScoring:
    def test_deterministic_regardless_of_file(self):
        scoring = DeterministicOpseScoring(KEY, 64, 1 << 24)
        a = scoring.map_score("net", 10, "file-1")
        b = scoring.map_score("net", 10, "file-2")
        assert a == b  # the defining weakness

    def test_order_preserved(self):
        scoring = DeterministicOpseScoring(KEY, 64, 1 << 24)
        values = [scoring.map_score("net", level, "f") for level in range(1, 65)]
        assert values == sorted(values)
        assert len(set(values)) == 64

    def test_per_keyword_keys_differ(self):
        scoring = DeterministicOpseScoring(KEY, 64, 1 << 24)
        net = [scoring.map_score("net", level, "f") for level in range(1, 65)]
        other = [scoring.map_score("sec", level, "f") for level in range(1, 65)]
        assert net != other

    def test_invert(self):
        scoring = DeterministicOpseScoring(KEY, 32, 1 << 20)
        for level in range(1, 33):
            ciphertext = scoring.map_score("net", level, "f")
            assert scoring.invert("net", ciphertext) == level

    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            DeterministicOpseScoring(b"", 64, 1 << 24)

    def test_multiplicity_profile_leaks(self):
        """The attack surface in one assertion."""
        from repro.analysis.attacks import multiplicity_profile

        scoring = DeterministicOpseScoring(KEY, 64, 1 << 24)
        levels = [5, 5, 5, 9, 9, 30]
        ciphertexts = [
            scoring.map_score("net", level, f"f{i}")
            for i, level in enumerate(levels)
        ]
        assert multiplicity_profile(ciphertexts) == multiplicity_profile(
            levels
        )
