"""Unit tests for the bucket-based OPE baseline ([18] style)."""

import random
from collections import Counter

import pytest

from repro.baselines.bucket_ope import BucketOpeMapper
from repro.errors import DomainError, ParameterError

KEY = b"bucket-ope-key-0"


def skewed_levels(seed=0, count=500):
    rng = random.Random(seed)
    return [max(1, min(64, round(rng.gauss(20, 6)))) for _ in range(count)]


class TestFit:
    def test_bucket_widths_proportional_to_frequency(self):
        levels = [1] * 90 + [2] * 10
        mapper = BucketOpeMapper.fit(KEY, levels, 1000)
        wide = mapper.bucket(1)
        narrow = mapper.bucket(2)
        assert wide.width > 5 * narrow.width

    def test_buckets_ordered_and_disjoint(self):
        mapper = BucketOpeMapper.fit(KEY, skewed_levels(), 1 << 20)
        ordered = sorted(mapper.trained_levels)
        for a, b in zip(ordered, ordered[1:]):
            assert mapper.bucket(a).high < mapper.bucket(b).low

    def test_buckets_cover_exactly_the_range(self):
        levels = [1, 1, 2, 3]
        mapper = BucketOpeMapper.fit(KEY, levels, 100)
        ordered = sorted(mapper.trained_levels)
        assert mapper.bucket(ordered[0]).low == 1
        assert mapper.bucket(ordered[-1]).high == 100

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            BucketOpeMapper.fit(KEY, [], 100)

    def test_rejects_range_below_level_count(self):
        with pytest.raises(ParameterError):
            BucketOpeMapper.fit(KEY, [1, 2, 3], 2)

    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            BucketOpeMapper.fit(b"", [1], 100)


class TestMapping:
    def test_values_in_level_bucket(self):
        levels = skewed_levels()
        mapper = BucketOpeMapper.fit(KEY, levels, 1 << 20)
        for i, level in enumerate(levels[:100]):
            value = mapper.map_score(level, f"f{i}")
            bucket = mapper.bucket(level)
            assert bucket.low <= value <= bucket.high

    def test_order_preserved(self):
        levels = skewed_levels()
        mapper = BucketOpeMapper.fit(KEY, levels, 1 << 20)
        ordered = sorted(set(levels))
        for a, b in zip(ordered, ordered[1:]):
            assert mapper.map_score(a, "x") < mapper.map_score(b, "y")

    def test_deterministic_per_file(self):
        mapper = BucketOpeMapper.fit(KEY, skewed_levels(), 1 << 20)
        assert mapper.map_score(20, "f") == mapper.map_score(20, "f")

    def test_one_to_many_within_bucket(self):
        mapper = BucketOpeMapper.fit(KEY, skewed_levels(), 1 << 20)
        values = {mapper.map_score(20, f"f{i}") for i in range(30)}
        assert len(values) > 1

    def test_unseen_level_raises(self):
        mapper = BucketOpeMapper.fit(KEY, [10, 10, 20], 100)
        with pytest.raises(DomainError):
            mapper.map_score(15, "f")

    def test_mapped_values_near_uniform_when_distribution_matches(self):
        levels = skewed_levels(count=2000)
        mapper = BucketOpeMapper.fit(KEY, levels, 1 << 20)
        from repro.analysis.flatness import ks_distance_to_uniform

        values = [mapper.map_score(level, f"f{i}") for i, level in enumerate(levels)]
        assert ks_distance_to_uniform(values, 1, 1 << 20) < 0.1


class TestRebuildDetection:
    def test_same_distribution_no_rebuild(self):
        levels = skewed_levels(seed=1, count=1000)
        mapper = BucketOpeMapper.fit(KEY, levels, 1 << 20)
        fresh_sample = [
            level
            for level in skewed_levels(seed=2, count=1000)
            if level in mapper.trained_levels
        ]
        assert not mapper.needs_rebuild(fresh_sample)

    def test_shifted_distribution_triggers_rebuild(self):
        levels = skewed_levels(seed=1)
        mapper = BucketOpeMapper.fit(KEY, levels, 1 << 20)
        shifted = [min(64, level + 25) for level in levels]
        assert mapper.needs_rebuild(shifted)

    def test_new_level_triggers_rebuild(self):
        mapper = BucketOpeMapper.fit(KEY, [10] * 50, 1000)
        assert mapper.needs_rebuild([10] * 50 + [11])

    def test_rejects_empty_update(self):
        mapper = BucketOpeMapper.fit(KEY, [10], 100)
        with pytest.raises(ParameterError):
            mapper.needs_rebuild([])

    def test_distribution_drift_counter_shape(self):
        levels = skewed_levels(seed=3)
        mapper = BucketOpeMapper.fit(KEY, levels, 1 << 20)
        counted = Counter(levels)
        assert set(mapper.trained_levels) == set(counted)
