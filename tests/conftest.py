"""Shared fixtures for the test suite.

Corpus-and-index fixtures are session-scoped: building them is the
expensive part of integration tests and they are strictly read-only
(schemes never mutate the plaintext index, and tests that need
mutation build their own).
"""

from __future__ import annotations

import pytest

from repro.core import EfficientRSSE, TEST_PARAMETERS, BasicRankedSSE
from repro.corpus import generate_corpus
from repro.ir import Analyzer, InvertedIndex


def pytest_addoption(parser):
    """Knobs for the fault-injection suites (the CI fault matrix).

    The suites are deterministic for any fixed pair of values; the CI
    ``fault-matrix`` job sweeps a small grid to pin robustness across
    distinct (but each reproducible) fault schedules.
    """
    parser.addoption(
        "--fault-seed",
        type=int,
        default=2010,
        help="seed for FaultPlan decision streams in the fault suites",
    )
    parser.addoption(
        "--fault-drop-rate",
        type=float,
        default=0.2,
        help="call drop probability for the fault suites",
    )


@pytest.fixture(scope="session")
def fault_seed(request) -> int:
    """The --fault-seed value driving FaultPlan determinism."""
    return request.config.getoption("--fault-seed")


@pytest.fixture(scope="session")
def fault_drop_rate(request) -> float:
    """The --fault-drop-rate value for injected call drops."""
    return request.config.getoption("--fault-drop-rate")


@pytest.fixture(scope="session")
def small_corpus():
    """30 deterministic synthetic RFC documents."""
    return generate_corpus(30, seed=11, vocabulary_size=250)


@pytest.fixture(scope="session")
def analyzer():
    """The default analysis pipeline."""
    return Analyzer()


@pytest.fixture(scope="session")
def plain_index(small_corpus, analyzer):
    """The plaintext inverted index of the small corpus."""
    index = InvertedIndex()
    for document in small_corpus:
        index.add_document(document.doc_id, analyzer.analyze(document.text))
    return index


@pytest.fixture(scope="session")
def rsse_scheme():
    """Efficient scheme with fast test parameters."""
    return EfficientRSSE(TEST_PARAMETERS)


@pytest.fixture(scope="session")
def basic_scheme():
    """Basic scheme with fast test parameters."""
    return BasicRankedSSE(TEST_PARAMETERS)


@pytest.fixture(scope="session")
def rsse_built(rsse_scheme, plain_index):
    """(key, BuiltIndex) for the efficient scheme over the small corpus."""
    key = rsse_scheme.keygen()
    return key, rsse_scheme.build_index(key, plain_index)


@pytest.fixture(scope="session")
def basic_built(basic_scheme, plain_index):
    """(key, SecureIndex) for the basic scheme over the small corpus."""
    key = basic_scheme.keygen()
    return key, basic_scheme.build_index(key, plain_index)
