"""Property-based tests on the SSE lineage schemes."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sse.goh import GohIndex
from repro.sse.swp import SwpCollection, SwpScheme

words_strategy = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
    min_size=1,
    max_size=20,
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(key=st.binary(min_size=8, max_size=32), words=words_strategy)
def test_swp_finds_exactly_the_word_positions(key, words):
    scheme = SwpScheme(key)
    collection = SwpCollection(scheme)
    collection.add_document("doc", words)
    for target in set(words):
        expected = [
            position for position, word in enumerate(words) if word == target
        ]
        assert collection.search(scheme.trapdoor(target)) == {
            "doc": expected
        }
    assert collection.search(scheme.trapdoor("absent-word")) == {}


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(key=st.binary(min_size=8, max_size=32), words=words_strategy)
def test_swp_decryption_roundtrip(key, words):
    scheme = SwpScheme(key)
    ciphertexts = scheme.encrypt_document("doc", words)
    blocks = scheme.decrypt_document("doc", ciphertexts)
    assert [block.rstrip(b"\x00").decode() for block in blocks] == words


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    key=st.binary(min_size=8, max_size=32),
    documents=st.dictionaries(
        keys=st.sampled_from(["d1", "d2", "d3", "d4"]),
        values=st.sets(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),
            min_size=1,
        ),
        min_size=1,
    ),
)
def test_goh_never_misses_indexed_words(key, documents):
    goh = GohIndex(key, false_positive_rate=0.001)
    for doc_id, words in documents.items():
        goh.add_document(doc_id, words)
    goh.finalize()
    for doc_id, words in documents.items():
        for word in words:
            assert doc_id in goh.search(goh.trapdoor(word))
