"""Stream-reassembly properties for the network framing layer.

The TCP wire format is ``u32 length || payload`` per message
(:func:`~repro.cloud.protocol.encode_frame`), reassembled by
:class:`~repro.cloud.protocol.StreamDecoder`.  A byte stream carries
no message boundaries, so the decoder must produce the exact same
payload sequence no matter how the kernel chunked the bytes: one-byte
dribbles, frames coalesced into a single read, reads that end in the
middle of a length header.  Hostile or corrupted length prefixes
(zero, oversized) must be rejected the moment the header is complete
— before any body byte is consumed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cloud.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    ErrorResponse,
    FileRequest,
    RankedFilesResponse,
    SearchRequest,
    SearchResponse,
    StreamDecoder,
    encode_frame,
)
from repro.cloud.updates import (
    AckResponse,
    PutBlobRequest,
    RemoveBlobRequest,
    UpdateListRequest,
)
from repro.errors import ProtocolError

# One representative instance of every message type that crosses the
# socket, so reassembly is exercised against real payload shapes
# (including multi-field binary messages and hex-heavy JSON ones).
MESSAGES = [
    SearchRequest(trapdoor_bytes=b"\x00\x10" + b"\xaa" * 32, top_k=5),
    SearchRequest(
        trapdoor_bytes=b"\x00\x08" + b"\xbb" * 16, entries_only=True
    ),
    SearchResponse(
        matches=(("doc1", b"\x01\x02"), ("doc2", b"\x03\x04")),
        files=(("doc1", b"blob-one"),),
    ),
    FileRequest(file_ids=("doc1", "doc2", "doc3")),
    RankedFilesResponse(files=(("doc9", b"\xff" * 40),)),
    UpdateListRequest(
        token=b"tok", address=b"\xcd" * 16, entries=(b"e1", b"e2"),
        mode="append",
    ),
    PutBlobRequest(token=b"tok", file_id="doc5", blob=b"\x00\x01" * 64),
    RemoveBlobRequest(token=b"tok", file_id="doc5"),
    AckResponse(ok=True, detail="applied"),
    ErrorResponse(code="ShardDownError", detail="shard 2 died", shard=2),
]

PAYLOADS = [
    message.to_bytes(codec)
    for message in MESSAGES
    for codec in (CODEC_JSON, CODEC_BINARY)
]


def chunked(data: bytes, cut_points: list[int]) -> list[bytes]:
    """Split ``data`` at the given sorted positions."""
    cuts = sorted({point % (len(data) + 1) for point in cut_points})
    pieces = []
    previous = 0
    for cut in cuts:
        pieces.append(data[previous:cut])
        previous = cut
    pieces.append(data[previous:])
    return [piece for piece in pieces if piece]


def reassemble(stream: bytes, chunks: list[bytes]) -> list[bytes]:
    decoder = StreamDecoder()
    frames = []
    for chunk in chunks:
        frames.extend(decoder.feed(chunk))
    assert decoder.at_boundary, "stream fully consumed but decoder mid-frame"
    return frames


class TestReassemblyEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=len(PAYLOADS) - 1),
            min_size=1,
            max_size=6,
        ),
        cut_points=st.lists(
            st.integers(min_value=0, max_value=100_000), max_size=40
        ),
    )
    def test_any_chunking_equals_whole_buffer_decode(
        self, picks, cut_points
    ):
        payloads = [PAYLOADS[pick] for pick in picks]
        stream = b"".join(encode_frame(payload) for payload in payloads)
        whole = reassemble(stream, [stream])
        assert whole == payloads
        assert reassemble(stream, chunked(stream, cut_points)) == payloads

    def test_one_byte_dribble(self):
        stream = b"".join(encode_frame(payload) for payload in PAYLOADS)
        dribbled = reassemble(
            stream, [bytes([value]) for value in stream]
        )
        assert dribbled == PAYLOADS

    def test_coalesced_frames_in_one_chunk(self):
        stream = b"".join(encode_frame(payload) for payload in PAYLOADS)
        assert reassemble(stream, [stream]) == PAYLOADS

    def test_mid_header_truncation_holds_state(self):
        payload = PAYLOADS[0]
        frame = encode_frame(payload)
        decoder = StreamDecoder()
        # Feed only 3 of the 4 header bytes: nothing decodes, nothing
        # is lost, and the boundary flag reports the partial frame.
        assert decoder.feed(frame[:3]) == []
        assert not decoder.at_boundary
        assert decoder.feed(frame[3:]) == [payload]
        assert decoder.at_boundary


class TestHostilePrefixes:
    def test_zero_length_rejected(self):
        decoder = StreamDecoder()
        with pytest.raises(ProtocolError, match="zero-length"):
            decoder.feed(b"\x00\x00\x00\x00")

    def test_oversized_length_rejected_without_body(self):
        decoder = StreamDecoder(max_frame_bytes=1024)
        # Only the 4 header bytes arrive; the decoder must reject at
        # header time instead of waiting for (or buffering) 2 GiB.
        with pytest.raises(ProtocolError, match="exceeds the limit"):
            decoder.feed((2**31).to_bytes(4, "big"))

    def test_oversized_length_rejected_even_split_across_chunks(self):
        decoder = StreamDecoder(max_frame_bytes=1024)
        header = (4096).to_bytes(4, "big")
        assert decoder.feed(header[:2]) == []
        with pytest.raises(ProtocolError, match="exceeds the limit"):
            decoder.feed(header[2:])

    @settings(max_examples=60, deadline=None)
    @given(length=st.integers(min_value=1025, max_value=2**32 - 1))
    def test_any_over_limit_prefix_rejected(self, length):
        decoder = StreamDecoder(max_frame_bytes=1024)
        with pytest.raises(ProtocolError):
            decoder.feed(length.to_bytes(4, "big"))

    def test_pending_bytes_never_exceeds_frame_limit(self):
        limit = 64
        decoder = StreamDecoder(max_frame_bytes=limit)
        payload = b"\xa1" + b"x" * 59
        for value in encode_frame(payload, limit):
            decoder.feed(bytes([value]))
            assert decoder.pending_bytes <= limit

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ProtocolError):
            StreamDecoder(max_frame_bytes=0)


class TestEncodeFrame:
    def test_rejects_empty_payload(self):
        with pytest.raises(ProtocolError, match="empty"):
            encode_frame(b"")

    def test_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame(b"x" * 11, max_frame_bytes=10)

    @settings(max_examples=60, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=512))
    def test_round_trips_any_payload(self, payload):
        decoder = StreamDecoder()
        assert decoder.feed(encode_frame(payload)) == [payload]
        assert decoder.at_boundary
