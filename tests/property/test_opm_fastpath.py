"""Fast path ≡ naive path, property-checked.

The OPM/OPSE fast path (shared split cache, batch bucket tables,
pre-keyed tape, early-exit HGD quantile) claims to change *nothing*
about output bytes.  These properties drive random keys, parameters and
inputs through both regimes and require exact equality — the
Hypothesis-shaped counterpart of the pinned vectors in
``tests/crypto/test_golden_vectors.py``.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.hgd import hgd_quantile, hgd_quantile_reference, support
from repro.crypto.opm import OneToManyOpm
from repro.crypto.opse import OrderPreservingEncryption
from repro.crypto.tape import CoinStream, KeyedTape, encode_context

key_strategy = st.binary(min_size=8, max_size=32)

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(
    key=key_strategy,
    domain_bits=st.integers(min_value=1, max_value=6),
    extra_bits=st.integers(min_value=2, max_value=20),
)
def test_opse_cached_equals_uncached(key, domain_bits, extra_bits):
    domain_size = 1 << domain_bits
    range_size = 1 << (domain_bits + extra_bits)
    fast = OrderPreservingEncryption(key, domain_size, range_size)
    naive = OrderPreservingEncryption(
        key, domain_size, range_size, cache_splits=False
    )
    table = fast.bucket_table()
    for plaintext in range(1, domain_size + 1):
        assert fast.encrypt(plaintext) == naive.encrypt(plaintext)
        naive_bucket = naive.bucket(plaintext)
        assert table[plaintext] == naive_bucket
        assert fast.bucket(plaintext) == naive_bucket


@RELAXED
@given(
    key=key_strategy,
    items=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=32),
            st.binary(min_size=1, max_size=12),
        ),
        min_size=1,
        max_size=20,
    ),
)
def test_opm_batch_equals_singles_both_regimes(key, items):
    range_size = 1 << 26
    batch_cached = OneToManyOpm(key, 32, range_size)
    batch_uncached = OneToManyOpm(key, 32, range_size, cache_buckets=False)
    singles = OneToManyOpm(key, 32, range_size, cache_buckets=False)
    expected = [
        singles.map_score(score, file_id) for score, file_id in items
    ]
    assert batch_cached.map_scores(items) == expected
    assert batch_uncached.map_scores(items) == expected
    cached_singles = OneToManyOpm(key, 32, range_size)
    assert [
        cached_singles.map_score(score, file_id) for score, file_id in items
    ] == expected


@RELAXED
@given(
    key=key_strategy,
    scores=st.lists(
        st.integers(min_value=1, max_value=16), min_size=1, max_size=8
    ),
)
def test_opm_buckets_table_invert_rounds_consistent(key, scores):
    range_size = 1 << 22
    fast = OneToManyOpm(key, 16, range_size)
    naive = OneToManyOpm(key, 16, range_size, cache_buckets=False)
    table = fast.buckets_table()
    assert set(table) == set(range(1, 17))
    for score in scores:
        naive_bucket = naive.bucket(score)
        assert table[score] == naive_bucket
        assert fast.rounds(score) == naive.rounds(score)
        value = fast.map_score(score, b"probe")
        assert naive_bucket.low <= value <= naive_bucket.high
        assert fast.invert(value) == score
        assert naive.invert(value) == score


@RELAXED
@given(
    key=key_strategy,
    context=st.lists(
        st.one_of(
            st.integers(min_value=0, max_value=1 << 46),
            st.binary(min_size=0, max_size=16),
            st.text(max_size=8),
        ),
        min_size=1,
        max_size=5,
    ),
    length=st.integers(min_value=0, max_value=200),
)
def test_keyed_tape_stream_equals_coin_stream(key, context, length):
    fresh = CoinStream(key, context)
    shared = KeyedTape(key).stream(context)
    assert fresh.bytes(length) == shared.bytes(length)
    assert fresh.bits(61) == shared.bits(61)


@RELAXED
@given(
    key=key_strategy,
    context=st.lists(
        st.integers(min_value=0, max_value=1 << 30),
        min_size=1,
        max_size=4,
    ),
    low=st.integers(min_value=0, max_value=1000),
    width=st.integers(min_value=0, max_value=100_000),
)
def test_keyed_tape_choice_equals_coin_stream(key, context, low, width):
    high = low + width
    expected = CoinStream(key, context).choice(low, high)
    tape = KeyedTape(key)
    assert tape.choice(encode_context(context), low, high) == expected
    # Seed splicing: prefix + suffix encodes like the full tuple.
    prefix = encode_context(context[:-1])
    suffix = encode_context(context[-1:])
    assert tape.choice(prefix + suffix, low, high) == expected


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    u=st.one_of(
        st.floats(
            min_value=0.0,
            max_value=1.0,
            exclude_max=True,
            allow_nan=False,
        ),
        st.sampled_from([0.0, 1e-300, 0.5, 0.9999999999999999]),
    ),
    population_bits=st.integers(min_value=1, max_value=46),
    successes=st.integers(min_value=0, max_value=2048),
    draw_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_hgd_early_exit_equals_reference(
    u, population_bits, successes, draw_fraction
):
    population = 1 << population_bits
    successes = min(successes, population)
    draws = int(draw_fraction * population)
    assert hgd_quantile(u, population, successes, draws) == (
        hgd_quantile_reference(u, population, successes, draws)
    )
    lo, hi = support(population, successes, draws)
    assert lo <= hgd_quantile(u, population, successes, draws) <= hi
