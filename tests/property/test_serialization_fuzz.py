"""Serialization fuzzing: mutated encodings never crash, only raise.

Every ``deserialize`` in the library must respond to corrupted input
with a typed :class:`~repro.errors.ReproError` (or succeed, if the
mutation happened to hit a don't-care byte) — never with an unhandled
``KeyError`` / ``UnicodeDecodeError`` / ``struct.error``.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.secure_index import EntryLayout, SecureIndex, encrypt_entry
from repro.core.trapdoor import Trapdoor, generate_trapdoor
from repro.crypto.keys import SchemeKey, keygen
from repro.errors import ReproError
from repro.sse.bloom import BloomFilter


def _mutate(data: bytes, position: int, new_byte: int) -> bytes:
    position %= max(1, len(data))
    return data[:position] + bytes([new_byte]) + data[position + 1 :]


def _build_index_bytes() -> bytes:
    layout = EntryLayout(zero_pad_bytes=2, file_id_bytes=8, score_bytes=4)
    index = SecureIndex(layout, padded_length=2)
    index.add_list(
        b"\x01\x02",
        [encrypt_entry(layout, b"list-key-0000000", "doc1", b"\x00" * 4)],
    )
    return index.serialize()


INDEX_BYTES = _build_index_bytes()
KEY_BYTES = keygen().serialize()
TRAPDOOR_BYTES = generate_trapdoor(keygen(), "network").serialize()
BLOOM_BYTES = BloomFilter(64, 2).to_bytes()


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    position=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
def test_secure_index_deserialize_never_crashes(position, new_byte):
    mutated = _mutate(INDEX_BYTES, position, new_byte)
    try:
        SecureIndex.deserialize(mutated)
    except ReproError:
        pass


@settings(max_examples=80, deadline=None)
@given(
    position=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
def test_scheme_key_deserialize_never_crashes(position, new_byte):
    mutated = _mutate(KEY_BYTES, position, new_byte)
    try:
        SchemeKey.deserialize(mutated)
    except ReproError:
        pass


@settings(max_examples=80, deadline=None)
@given(
    position=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
def test_trapdoor_deserialize_never_crashes(position, new_byte):
    mutated = _mutate(TRAPDOOR_BYTES, position, new_byte)
    try:
        Trapdoor.deserialize(mutated)
    except ReproError:
        pass


@settings(max_examples=80, deadline=None)
@given(
    position=st.integers(min_value=0, max_value=10_000),
    new_byte=st.integers(min_value=0, max_value=255),
)
def test_bloom_from_bytes_never_crashes(position, new_byte):
    mutated = _mutate(BLOOM_BYTES, position, new_byte)
    try:
        BloomFilter.from_bytes(mutated)
    except ReproError:
        pass


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=300))
def test_arbitrary_bytes_rejected_cleanly(data):
    for deserializer in (
        SecureIndex.deserialize,
        SchemeKey.deserialize,
        Trapdoor.deserialize,
        BloomFilter.from_bytes,
    ):
        try:
            deserializer(data)
        except ReproError:
            pass
