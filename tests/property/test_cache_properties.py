"""Property-based tests for the bounded LRU cache.

A stateful hypothesis model drives :class:`LruCache` with random
operation sequences and checks it against a plain-dict reference model
that tracks recency explicitly.  The invariants:

* the resident-entry count never exceeds capacity;
* a ``get`` returns exactly what an unbounded dict would, whenever the
  key is resident — and residency follows LRU order;
* the lifetime counters (hits, misses, evictions) are monotone and
  consistent (``hits + misses`` equals the number of ``get`` calls,
  evictions equals insertions beyond capacity minus explicit pops);
* ``clear`` empties the cache but preserves lifetime counters.

A second machine drives **bytes mode** (the hot-query result cache's
configuration): residency is bounded by the byte budget instead of an
entry count, ``resident_bytes`` always equals the sum of resident
value sizes and never exceeds the budget, over-budget values are
refused (dropping any stale entry they meant to replace), and
evictions still leave in strict LRU order.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cloud.cache import LruCache
from repro.errors import ParameterError
import pytest

keys = st.binary(min_size=1, max_size=4)
values = st.integers()


class LruModelMachine(RuleBasedStateMachine):
    """Drive LruCache against an order-tracking dict reference."""

    @initialize(capacity=st.integers(min_value=1, max_value=8))
    def set_up(self, capacity):
        self.cache = LruCache(capacity)
        self.capacity = capacity
        # Reference: insertion/recency-ordered dict (oldest first).
        self.model: dict[bytes, int] = {}
        self.expected_hits = 0
        self.expected_misses = 0
        self.expected_evictions = 0

    @rule(key=keys, value=values)
    def put(self, key, value):
        self.cache.put(key, value)
        if key in self.model:
            del self.model[key]  # refresh recency
        elif len(self.model) == self.capacity:
            oldest = next(iter(self.model))
            del self.model[oldest]
            self.expected_evictions += 1
        self.model[key] = value

    @rule(key=keys)
    def get(self, key):
        result = self.cache.get(key)
        if key in self.model:
            value = self.model.pop(key)
            self.model[key] = value  # refresh recency
            self.expected_hits += 1
            assert result == value
        else:
            self.expected_misses += 1
            assert result is None

    @rule(key=keys)
    def pop(self, key):
        result = self.cache.pop(key)
        if key in self.model:
            assert result == self.model.pop(key)
        else:
            assert result is None

    @rule()
    def clear(self):
        self.cache.clear()
        self.model.clear()

    @rule(key=keys)
    def contains(self, key):
        # Membership probes must not disturb recency: the model is
        # untouched, and subsequent evictions must still agree.
        assert (key in self.cache) == (key in self.model)

    @invariant()
    def capacity_never_exceeded(self):
        assert len(self.cache) <= self.capacity

    @invariant()
    def same_residents_in_same_order(self):
        assert list(self.cache.keys()) == list(self.model.keys())

    @invariant()
    def counters_match_reference(self):
        assert self.cache.hits == self.expected_hits
        assert self.cache.misses == self.expected_misses
        assert self.cache.evictions == self.expected_evictions


TestLruModel = LruModelMachine.TestCase
TestLruModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


byte_values = st.binary(min_size=0, max_size=12)


class LruBytesModelMachine(RuleBasedStateMachine):
    """Drive a bytes-budgeted LruCache against a dict reference."""

    @initialize(budget=st.integers(min_value=1, max_value=32))
    def set_up(self, budget):
        self.cache = LruCache(capacity=None, capacity_bytes=budget)
        self.budget = budget
        self.model: dict[bytes, bytes] = {}
        self.expected_evictions = 0
        self.expected_rejections = 0

    def _resident_total(self) -> int:
        return sum(len(value) for value in self.model.values())

    @rule(key=keys, value=byte_values)
    def put(self, key, value):
        self.cache.put(key, value)
        if len(value) > self.budget:
            # Refused outright; a stale entry under the key must go too.
            self.model.pop(key, None)
            self.expected_rejections += 1
            return
        if key in self.model:
            del self.model[key]  # refresh recency
        self.model[key] = value
        while self._resident_total() > self.budget:
            oldest = next(iter(self.model))
            del self.model[oldest]
            self.expected_evictions += 1

    @rule(key=keys)
    def get(self, key):
        result = self.cache.get(key)
        if key in self.model:
            value = self.model.pop(key)
            self.model[key] = value  # refresh recency
            assert result == value
        else:
            assert result is None

    @rule(key=keys)
    def pop(self, key):
        result = self.cache.pop(key)
        if key in self.model:
            assert result == self.model.pop(key)
        else:
            assert result is None

    @rule()
    def clear(self):
        self.cache.clear()
        self.model.clear()

    @invariant()
    def budget_never_exceeded(self):
        assert self.cache.resident_bytes <= self.budget

    @invariant()
    def resident_bytes_is_sum_of_sizes(self):
        assert self.cache.resident_bytes == self._resident_total()

    @invariant()
    def same_residents_in_same_order(self):
        assert list(self.cache.keys()) == list(self.model.keys())

    @invariant()
    def counters_match_reference(self):
        assert self.cache.evictions == self.expected_evictions
        assert self.cache.oversize_rejections == self.expected_rejections


TestLruBytesModel = LruBytesModelMachine.TestCase
TestLruBytesModel.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


class TestLruBasics:
    def test_rejects_nonpositive_capacity(self):
        for capacity in (0, -1):
            with pytest.raises(ParameterError):
                LruCache(capacity)

    def test_eviction_is_lru_not_fifo(self):
        cache = LruCache(2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        assert cache.get(b"a") == 1  # touch a: b is now LRU
        cache.put(b"c", 3)
        assert b"b" not in cache
        assert cache.get(b"a") == 1
        assert cache.get(b"c") == 3
        assert cache.evictions == 1

    def test_counters_monotone_across_clear(self):
        cache = LruCache(4)
        cache.put(b"k", 1)
        assert cache.get(b"k") == 1
        assert cache.get(b"missing") is None
        before = (cache.hits, cache.misses)
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == before
        assert cache.get(b"k") is None
        assert cache.misses == before[1] + 1


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=6),
    operations=st.lists(
        st.tuples(keys, values), min_size=0, max_size=40
    ),
)
def test_resident_set_is_last_k_distinct_puts(capacity, operations):
    """With puts only, residents are the most recent distinct keys."""
    cache = LruCache(capacity)
    for key, value in operations:
        cache.put(key, value)
    recent: list[bytes] = []
    for key, _ in reversed(operations):
        if key not in recent:
            recent.append(key)
        if len(recent) == capacity:
            break
    assert set(cache.keys()) == set(recent)
    for key, value in operations:
        if key in recent:
            # Last write wins for every resident key.
            last = [v for k, v in operations if k == key][-1]
            assert cache.get(key) == last
