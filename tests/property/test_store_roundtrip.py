"""Property-based round trip for the packed storage engine.

For arbitrary posting-list maps (random addresses, random fixed-width
encrypted entries, optional padding), the pipeline

    build dict index -> pack to disk -> mmap-load

must reproduce the dict index exactly: same lists, same bytes, same
lookups — via the spilling external-sort writer (any insertion order)
as well as the sorted streaming writer, and again after a delta-log
mutation plus compaction.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cloud.store import (
    PackedIndexStore,
    PackedStore,
    SpillingPackWriter,
    load_packed_index,
    pack_index,
)
from repro.core.secure_index import EntryLayout, SecureIndex

LAYOUT = EntryLayout(zero_pad_bytes=1, file_id_bytes=4, score_bytes=2)
WIDTH = LAYOUT.ciphertext_bytes

addresses = st.binary(min_size=1, max_size=12)
entry = st.binary(min_size=WIDTH, max_size=WIDTH)
posting_lists = st.dictionaries(
    addresses, st.lists(entry, min_size=1, max_size=6), max_size=12
)


def build_dict_index(lists, padded_length=None):
    index = SecureIndex(LAYOUT, padded_length=padded_length)
    for address in sorted(lists):
        index.add_list(address, list(lists[address]))
    return index


@settings(max_examples=40, deadline=None)
@given(lists=posting_lists, seed=st.integers(0, 2**16))
def test_pack_then_mmap_load_equals_dict_index(tmp_path_factory, lists, seed):
    tmp_path = tmp_path_factory.mktemp("roundtrip")
    index = build_dict_index(lists)
    path = pack_index(index, tmp_path / "idx.rpk")

    eager = load_packed_index(path)
    assert dict(eager.items()) == dict(index.items())
    assert eager.layout == index.layout

    with PackedIndexStore(path) as store:
        assert dict(store.items()) == dict(index.items())
        shuffled = list(lists)
        random.Random(seed).shuffle(shuffled)
        for address in shuffled:
            assert store.lookup(address) == index.lookup(address)
        assert store.lookup(b"\xffmissing\xff" * 3) is None


@settings(max_examples=25, deadline=None)
@given(
    lists=st.dictionaries(
        addresses, st.lists(entry, min_size=1, max_size=4),
        min_size=1, max_size=10,
    ),
    seed=st.integers(0, 2**16),
    run_entries=st.integers(min_value=1, max_value=8),
)
def test_spilling_writer_any_order_equals_dict_index(
    tmp_path_factory, lists, seed, run_entries
):
    tmp_path = tmp_path_factory.mktemp("spill")
    shuffled = list(lists)
    random.Random(seed).shuffle(shuffled)
    with SpillingPackWriter(
        tmp_path / "idx.rpk", LAYOUT, padded_length=6,
        run_entries=run_entries,
    ) as writer:
        for address in shuffled:
            writer.add_list(address, lists[address])
    with PackedIndexStore(tmp_path / "idx.rpk") as store:
        # Padding entries are fresh randomness, so compare the real
        # prefix and the padded geometry rather than raw list bytes.
        assert set(store.addresses()) == set(lists)
        for address, real in lists.items():
            stored = store.lookup(address)
            assert len(stored) == 6
            assert stored[: len(real)] == real


@settings(max_examples=25, deadline=None)
@given(
    lists=st.dictionaries(
        addresses, st.lists(entry, min_size=1, max_size=4),
        min_size=1, max_size=8,
    ),
    extra=st.lists(entry, min_size=1, max_size=3),
)
def test_delta_then_compact_preserves_equivalence(
    tmp_path_factory, lists, extra
):
    tmp_path = tmp_path_factory.mktemp("delta")
    index = build_dict_index(lists)
    path = pack_index(index, tmp_path / "idx.rpk")
    victim = sorted(lists)[0]
    new_address = b"\x00new\x00" + victim

    index.replace_list(victim, list(extra))
    if new_address not in lists:
        index.add_list(new_address, list(extra))

    with PackedStore(path) as store:
        store.replace_list(victim, list(extra))
        if new_address not in lists:
            store.add_list(new_address, list(extra))
        assert dict(store.items()) == dict(index.items())
        store.compact()
        assert dict(store.items()) == dict(index.items())
    with PackedStore(path) as reopened:
        assert dict(reopened.items()) == dict(index.items())
        reopened.close()
