"""Property-based tests over randomly generated mini-collections.

Hypothesis drives document collections through both schemes and checks
the invariants the paper's correctness rests on:

* search completeness — the match set equals the plaintext posting set;
* basic-scheme ranking equals plaintext ranking exactly;
* efficient-scheme ranking never inverts a pair separated by more than
  one quantization level;
* OPM order preservation holds under arbitrary keys and file ids.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.plaintext import PlaintextRankedSearch
from repro.core import BasicRankedSSE, EfficientRSSE, TEST_PARAMETERS
from repro.ir import InvertedIndex
from repro.ir.scoring import single_keyword_score

TERMS = ["alpha", "beta", "gamma", "delta"]

document_strategy = st.lists(
    st.sampled_from(TERMS + ["filler", "padding"]),
    min_size=1,
    max_size=30,
)

collection_strategy = st.lists(document_strategy, min_size=1, max_size=8)


def build_plain_index(collection) -> InvertedIndex:
    index = InvertedIndex()
    for position, terms in enumerate(collection):
        index.add_document(f"doc{position}", terms)
    return index


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(collection=collection_strategy, term=st.sampled_from(TERMS))
def test_rsse_search_completeness(collection, term):
    index = build_plain_index(collection)
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    built = scheme.build_index(key, index)
    ranking = scheme.search_ranked(built.secure_index, scheme.trapdoor(key, term))
    expected = {posting.file_id for posting in index.posting_list(term)}
    assert {entry.file_id for entry in ranking} == expected


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(collection=collection_strategy, term=st.sampled_from(TERMS))
def test_rsse_order_respects_quantized_scores(collection, term):
    index = build_plain_index(collection)
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    built = scheme.build_index(key, index)
    ranking = scheme.search_ranked(built.secure_index, scheme.trapdoor(key, term))
    levels = []
    for entry in ranking:
        score = single_keyword_score(
            index.term_frequency(term, entry.file_id),
            index.file_length(entry.file_id),
        )
        levels.append(built.quantizer.quantize(score))
    # Quantized levels must be non-increasing down the ranking.
    assert levels == sorted(levels, reverse=True)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(collection=collection_strategy, term=st.sampled_from(TERMS))
def test_basic_ranking_equals_plaintext(collection, term):
    index = build_plain_index(collection)
    scheme = BasicRankedSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    secure = scheme.build_index(key, index)
    matches = scheme.search(secure, scheme.trapdoor(key, term))
    ranking = scheme.rank_matches(key, matches)
    truth = PlaintextRankedSearch(index).search_ranked(term)
    assert [entry.file_id for entry in ranking] == [
        entry.file_id for entry in truth
    ]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    collection=collection_strategy,
    term=st.sampled_from(TERMS),
    k=st.integers(min_value=1, max_value=5),
)
def test_topk_is_prefix_of_full_ranking(collection, term, k):
    index = build_plain_index(collection)
    scheme = EfficientRSSE(TEST_PARAMETERS)
    key = scheme.keygen()
    built = scheme.build_index(key, index)
    trapdoor = scheme.trapdoor(key, term)
    full = scheme.search_ranked(built.secure_index, trapdoor)
    topk = scheme.search_top_k(built.secure_index, trapdoor, k)
    assert [entry.file_id for entry in topk] == [
        entry.file_id for entry in full[:k]
    ]
