"""Property-based tests on the crypto substrate's core invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.hgd import hgd_quantile, support
from repro.crypto.opm import OneToManyOpm
from repro.crypto.opse import OrderPreservingEncryption
from repro.crypto.symmetric import SymmetricCipher
from repro.crypto.tape import CoinStream

key_strategy = st.binary(min_size=8, max_size=32)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    key=key_strategy,
    domain_bits=st.integers(min_value=1, max_value=6),
    extra_bits=st.integers(min_value=2, max_value=20),
)
def test_opse_bijective_on_domain(key, domain_bits, extra_bits):
    domain_size = 1 << domain_bits
    opse = OrderPreservingEncryption(
        key, domain_size, 1 << (domain_bits + extra_bits)
    )
    ciphertexts = [opse.encrypt(m) for m in range(1, domain_size + 1)]
    assert len(set(ciphertexts)) == domain_size
    assert ciphertexts == sorted(ciphertexts)
    for plaintext, ciphertext in zip(range(1, domain_size + 1), ciphertexts):
        assert opse.decrypt(ciphertext) == plaintext


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    key=key_strategy,
    scores=st.lists(
        st.integers(min_value=1, max_value=32), min_size=2, max_size=10
    ),
    file_ids=st.lists(
        st.text(min_size=1, max_size=8), min_size=2, max_size=10, unique=True
    ),
)
def test_opm_pairwise_order(key, scores, file_ids):
    opm = OneToManyOpm(key, 32, 1 << 26)
    pairs = [
        (score, opm.map_score(score, file_ids[i % len(file_ids)]))
        for i, score in enumerate(scores)
    ]
    for score_a, value_a in pairs:
        for score_b, value_b in pairs:
            if score_a < score_b:
                assert value_a < value_b


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    key=key_strategy,
    score=st.integers(min_value=1, max_value=32),
    file_id=st.text(min_size=1, max_size=16),
)
def test_opm_inversion_total(key, score, file_id):
    opm = OneToManyOpm(key, 32, 1 << 26)
    assert opm.invert(opm.map_score(score, file_id)) == score


@settings(max_examples=40, deadline=None)
@given(
    key=key_strategy,
    message=st.binary(max_size=300),
)
def test_cipher_roundtrip_any_key_any_message(key, message):
    cipher = SymmetricCipher(key)
    assert cipher.decrypt(cipher.encrypt(message)) == message


@settings(max_examples=40, deadline=None)
@given(
    population=st.integers(min_value=1, max_value=10**9),
    data=st.data(),
)
def test_hgd_quantile_respects_support(population, data):
    successes = data.draw(st.integers(min_value=0, max_value=min(population, 200)))
    draws = data.draw(st.integers(min_value=0, max_value=population))
    u = data.draw(st.floats(min_value=0.0, max_value=0.999999))
    lo, hi = support(population, successes, draws)
    assert lo <= hgd_quantile(u, population, successes, draws) <= hi


@settings(max_examples=30, deadline=None)
@given(
    key=key_strategy,
    context=st.lists(
        st.one_of(st.integers(), st.text(max_size=10), st.binary(max_size=10)),
        max_size=5,
    ),
    lengths=st.lists(st.integers(min_value=0, max_value=40), min_size=1,
                     max_size=5),
)
def test_coinstream_chunking_invariance(key, context, lengths):
    total = sum(lengths)
    whole = CoinStream(key, context).bytes(total)
    stream = CoinStream(key, context)
    pieces = b"".join(stream.bytes(length) for length in lengths)
    assert pieces == whole
