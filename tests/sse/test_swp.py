"""Unit tests for the Song-Wagner-Perrig scheme."""

import pytest

from repro.errors import CryptoError, ParameterError
from repro.sse.swp import BLOCK_BYTES, SwpCollection, SwpScheme

KEY = b"swp-test-key-000"


class TestEncryption:
    def test_ciphertext_blocks_fixed_width(self):
        scheme = SwpScheme(KEY)
        blocks = scheme.encrypt_document("d1", ["alpha", "beta"])
        assert all(len(block) == BLOCK_BYTES for block in blocks)

    def test_same_word_different_positions_differ(self):
        # The stream layer randomizes positions even for equal words.
        scheme = SwpScheme(KEY)
        blocks = scheme.encrypt_document("d1", ["alpha", "alpha"])
        assert blocks[0] != blocks[1]

    def test_same_word_different_documents_differ(self):
        scheme = SwpScheme(KEY)
        a = scheme.encrypt_document("d1", ["alpha"])
        b = scheme.encrypt_document("d2", ["alpha"])
        assert a != b

    def test_decrypt_roundtrip(self):
        scheme = SwpScheme(KEY)
        words = ["alpha", "beta", "gamma", "alpha"]
        blocks = scheme.decrypt_document(
            "d1", scheme.encrypt_document("d1", words)
        )
        recovered = [block.rstrip(b"\x00").decode() for block in blocks]
        assert recovered == words

    def test_long_words_hash_compressed_consistently(self):
        scheme = SwpScheme(KEY)
        long_word = "extraordinarily-long-keyword-beyond-block"
        collection = SwpCollection(scheme)
        collection.add_document("d1", [long_word, "short"])
        matches = collection.search(scheme.trapdoor(long_word))
        assert matches == {"d1": [0]}

    def test_decrypt_rejects_malformed_block(self):
        scheme = SwpScheme(KEY)
        with pytest.raises(CryptoError):
            scheme.decrypt_document("d1", [b"short"])

    def test_rejects_empty_key_and_ids(self):
        with pytest.raises(ParameterError):
            SwpScheme(b"")
        scheme = SwpScheme(KEY)
        with pytest.raises(ParameterError):
            scheme.encrypt_document("", ["x"])
        with pytest.raises(ParameterError):
            scheme.trapdoor("")


class TestSearch:
    @pytest.fixture()
    def collection(self):
        scheme = SwpScheme(KEY)
        collection = SwpCollection(scheme)
        collection.add_document("d1", ["alpha", "beta", "alpha"])
        collection.add_document("d2", ["beta", "gamma"])
        collection.add_document("d3", ["delta"])
        return scheme, collection

    def test_finds_all_positions(self, collection):
        scheme, coll = collection
        assert coll.search(scheme.trapdoor("alpha")) == {"d1": [0, 2]}

    def test_finds_across_documents(self, collection):
        scheme, coll = collection
        assert coll.search(scheme.trapdoor("beta")) == {
            "d1": [1], "d2": [0],
        }

    def test_absent_word_empty(self, collection):
        scheme, coll = collection
        assert coll.search(scheme.trapdoor("missing")) == {}

    def test_wrong_key_trapdoor_finds_nothing(self, collection):
        _, coll = collection
        other = SwpScheme(b"different-key-00")
        assert coll.search(other.trapdoor("alpha")) == {}

    def test_total_positions_is_collection_length(self, collection):
        _, coll = collection
        assert coll.total_word_positions == 6

    def test_duplicate_document_rejected(self, collection):
        _, coll = collection
        with pytest.raises(ParameterError):
            coll.add_document("d1", ["x"])


class TestComplexityShape:
    def test_search_scans_every_position(self):
        """SWP's defining property: work scales with collection length."""
        scheme = SwpScheme(KEY)
        small = SwpCollection(scheme)
        small.add_document("d", ["w%d" % i for i in range(10)])
        large = SwpCollection(scheme)
        large.add_document("d", ["w%d" % i for i in range(1000)])
        assert large.total_word_positions == 100 * small.total_word_positions
