"""Unit tests for the Bloom filter substrate."""

import pytest

from repro.errors import ParameterError
from repro.sse.bloom import BloomFilter, optimal_parameters


class TestOptimalParameters:
    def test_classic_sizing(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        # ~9.6 bits/item and ~7 hashes for 1% FP.
        assert 9000 <= bits <= 10500
        assert 6 <= hashes <= 8

    def test_lower_rate_needs_more_bits(self):
        loose, _ = optimal_parameters(1000, 0.05)
        tight, _ = optimal_parameters(1000, 0.001)
        assert tight > loose

    def test_validation(self):
        with pytest.raises(ParameterError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ParameterError):
            optimal_parameters(10, 0.0)
        with pytest.raises(ParameterError):
            optimal_parameters(10, 1.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        filter_ = BloomFilter.for_capacity(500, 0.01)
        items = [b"item-%d" % i for i in range(500)]
        for item in items:
            filter_.add(item)
        assert all(item in filter_ for item in items)

    def test_false_positive_rate_near_target(self):
        filter_ = BloomFilter.for_capacity(1000, 0.01)
        for i in range(1000):
            filter_.add(b"present-%d" % i)
        false_positives = sum(
            1 for i in range(20_000) if b"absent-%d" % i in filter_
        )
        assert false_positives / 20_000 < 0.03

    def test_empty_filter_contains_nothing(self):
        filter_ = BloomFilter(1024, 4)
        assert b"anything" not in filter_
        assert filter_.expected_false_positive_rate() == 0.0

    def test_non_bytes_not_contained(self):
        filter_ = BloomFilter(64, 2)
        filter_.add(b"x")
        assert "x" not in filter_  # str, not bytes
        assert 42 not in filter_

    def test_count_and_fill(self):
        filter_ = BloomFilter(256, 3)
        assert filter_.count == 0
        filter_.add(b"a")
        filter_.add(b"b")
        assert filter_.count == 2
        assert 0 < filter_.fill_ratio() <= 6 / 256

    def test_pad_to_masks_load(self):
        light = BloomFilter(2048, 4)
        light.add(b"only-item")
        heavy = BloomFilter(2048, 4)
        for i in range(50):
            heavy.add(b"item-%d" % i)
        light.pad_to(50, entropy=b"doc1")
        assert light.count == heavy.count == 50
        assert abs(light.fill_ratio() - heavy.fill_ratio()) < 0.1

    def test_pad_to_below_count_rejected(self):
        filter_ = BloomFilter(64, 2)
        filter_.add(b"a")
        filter_.add(b"b")
        with pytest.raises(ParameterError):
            filter_.pad_to(1)

    def test_serialization_roundtrip(self):
        filter_ = BloomFilter.for_capacity(100, 0.01)
        for i in range(100):
            filter_.add(b"x%d" % i)
        restored = BloomFilter.from_bytes(filter_.to_bytes())
        assert restored.bits == filter_.bits
        assert restored.hashes == filter_.hashes
        assert restored.count == filter_.count
        assert all(b"x%d" % i in restored for i in range(100))

    def test_serialization_rejects_garbage(self):
        with pytest.raises(ParameterError):
            BloomFilter.from_bytes(b"short")
        filter_ = BloomFilter(64, 2)
        truncated = filter_.to_bytes()[:-1]
        with pytest.raises(ParameterError):
            BloomFilter.from_bytes(truncated)

    def test_validation(self):
        with pytest.raises(ParameterError):
            BloomFilter(0, 1)
        with pytest.raises(ParameterError):
            BloomFilter(10, 0)

    def test_expected_fp_rate_grows_with_load(self):
        filter_ = BloomFilter(512, 4)
        filter_.add(b"one")
        light = filter_.expected_false_positive_rate()
        for i in range(200):
            filter_.add(b"more-%d" % i)
        assert filter_.expected_false_positive_rate() > light
