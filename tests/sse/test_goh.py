"""Unit tests for Goh's Bloom-filter secure index."""

import pytest

from repro.errors import ParameterError
from repro.sse.goh import GohIndex

KEY = b"goh-test-key-000"


@pytest.fixture()
def index():
    goh = GohIndex(KEY, false_positive_rate=0.0001)
    goh.add_document("d1", {"alpha", "beta", "gamma"})
    goh.add_document("d2", {"beta", "delta"})
    goh.add_document("d3", {"epsilon"})
    goh.finalize()
    return goh


class TestSearch:
    def test_single_match(self, index):
        assert index.search(index.trapdoor("alpha")) == ["d1"]

    def test_multi_match(self, index):
        assert index.search(index.trapdoor("beta")) == ["d1", "d2"]

    def test_absent_word(self, index):
        assert index.search(index.trapdoor("nothere")) == []

    def test_wrong_key_trapdoor_misses(self, index):
        other = GohIndex(b"other-key-000000")
        assert index.search(other.trapdoor("alpha")) == []

    def test_no_false_negatives_across_vocabulary(self):
        goh = GohIndex(KEY, false_positive_rate=0.001)
        vocabulary = {f"word{i}" for i in range(200)}
        goh.add_document("big", vocabulary)
        goh.add_document("small", {"word0"})
        goh.finalize()
        for word in vocabulary:
            assert "big" in goh.search(goh.trapdoor(word))


class TestBlinding:
    def test_filters_padded_to_common_load(self, index):
        counts = {
            index.filter_for(doc_id).count for doc_id in ("d1", "d2", "d3")
        }
        assert len(counts) == 1  # uniform item count

    def test_fill_ratios_similar_despite_word_count_gap(self):
        goh = GohIndex(KEY, false_positive_rate=0.001)
        goh.add_document("rich", {f"w{i}" for i in range(100)})
        goh.add_document("poor", {"single"})
        goh.finalize()
        rich = goh.filter_for("rich").fill_ratio()
        poor = goh.filter_for("poor").fill_ratio()
        assert abs(rich - poor) < 0.1

    def test_same_word_different_files_different_entries(self):
        # Identical words must not produce identical filter entries
        # across files (the doc-id binding).
        goh = GohIndex(KEY, false_positive_rate=0.001)
        goh.add_document("a", {"shared"})
        goh.add_document("b", {"shared"})
        goh.finalize()
        filter_a = goh.filter_for("a").to_bytes()
        filter_b = goh.filter_for("b").to_bytes()
        assert filter_a != filter_b


class TestLifecycle:
    def test_search_before_finalize_rejected(self):
        goh = GohIndex(KEY)
        goh.add_document("d1", {"x"})
        with pytest.raises(ParameterError):
            goh.search(goh.trapdoor("x"))

    def test_add_after_finalize_rejected(self, index):
        with pytest.raises(ParameterError):
            index.add_document("d4", {"x"})

    def test_double_finalize_rejected(self, index):
        with pytest.raises(ParameterError):
            index.finalize()

    def test_finalize_empty_rejected(self):
        with pytest.raises(ParameterError):
            GohIndex(KEY).finalize()

    def test_validation(self):
        with pytest.raises(ParameterError):
            GohIndex(b"")
        with pytest.raises(ParameterError):
            GohIndex(KEY, false_positive_rate=1.5)
        goh = GohIndex(KEY)
        with pytest.raises(ParameterError):
            goh.add_document("", {"x"})
        with pytest.raises(ParameterError):
            goh.add_document("d", set())
        goh.add_document("d", {"x"})
        with pytest.raises(ParameterError):
            goh.add_document("d", {"y"})
        with pytest.raises(ParameterError):
            goh.trapdoor("")

    def test_diagnostics(self, index):
        assert index.num_files == 3
        assert index.size_bytes() > 0
        with pytest.raises(ParameterError):
            index.filter_for("ghost")
