"""Unit tests for the PRF ``f`` and keyed hash ``pi``."""

import pytest

from repro.crypto.prf import DEFAULT_KEY_BYTES, KeyedHash, Prf, generate_key
from repro.errors import ParameterError


class TestGenerateKey:
    def test_default_length(self):
        assert len(generate_key()) == DEFAULT_KEY_BYTES

    def test_custom_length(self):
        assert len(generate_key(32)) == 32

    def test_rejects_non_positive(self):
        with pytest.raises(ParameterError):
            generate_key(0)
        with pytest.raises(ParameterError):
            generate_key(-4)

    def test_keys_are_distinct(self):
        assert generate_key() != generate_key()


class TestPrf:
    def test_deterministic_for_same_inputs(self):
        prf = Prf(b"k" * 16)
        assert prf.evaluate(b"hello") == prf.evaluate(b"hello")

    def test_differs_across_messages(self):
        prf = Prf(b"k" * 16)
        assert prf.evaluate(b"a") != prf.evaluate(b"b")

    def test_differs_across_keys(self):
        assert Prf(b"a" * 16).evaluate(b"m") != Prf(b"b" * 16).evaluate(b"m")

    def test_accepts_str_messages(self):
        prf = Prf(b"k" * 16)
        assert prf.evaluate("word") == prf.evaluate(b"word")

    def test_default_output_length(self):
        assert len(Prf(b"k" * 16).evaluate(b"m")) == 32

    def test_configured_output_length(self):
        assert len(Prf(b"k" * 16, output_bytes=20).evaluate(b"m")) == 20

    def test_long_output_expansion(self):
        prf = Prf(b"k" * 16)
        long = prf.evaluate_to_length(b"m", 100)
        assert len(long) == 100

    def test_long_output_prefix_not_equal_to_short(self):
        # Counter-mode expansion intentionally differs from the single
        # HMAC; what matters is determinism, tested separately.
        prf = Prf(b"k" * 16)
        assert prf.evaluate_to_length(b"m", 100) == prf.evaluate_to_length(
            b"m", 100
        )

    def test_callable_form(self):
        prf = Prf(b"k" * 16)
        assert prf(b"x") == prf.evaluate(b"x")

    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            Prf(b"")

    def test_rejects_non_positive_output(self):
        with pytest.raises(ParameterError):
            Prf(b"k" * 16, output_bytes=0)
        prf = Prf(b"k" * 16)
        with pytest.raises(ParameterError):
            prf.evaluate_to_length(b"m", 0)

    def test_derive_key_length(self):
        assert len(Prf(b"k" * 16).derive_key("label")) == DEFAULT_KEY_BYTES

    def test_derive_key_deterministic(self):
        prf = Prf(b"k" * 16)
        assert prf.derive_key("w1") == prf.derive_key("w1")

    def test_derive_key_distinct_labels(self):
        prf = Prf(b"k" * 16)
        assert prf.derive_key("w1") != prf.derive_key("w2")

    def test_derive_key_length_framing(self):
        # Length-prefixing means these concatenation-colliding labels
        # must still derive different keys.
        prf = Prf(b"k" * 16)
        assert prf.derive_key(b"ab") != prf.derive_key(b"a")


class TestKeyedHash:
    def test_address_width(self):
        assert len(KeyedHash(b"x" * 16).address("network")) == 20  # 160 bits

    def test_custom_width(self):
        assert len(KeyedHash(b"x" * 16, output_bits=256).address("w")) == 32

    def test_wide_output_expansion(self):
        assert len(KeyedHash(b"x" * 16, output_bits=512).address("w")) == 64

    def test_deterministic(self):
        kh = KeyedHash(b"x" * 16)
        assert kh.address("network") == kh.address("network")

    def test_distinct_keywords(self):
        kh = KeyedHash(b"x" * 16)
        assert kh.address("network") != kh.address("protocol")

    def test_distinct_keys(self):
        assert (
            KeyedHash(b"a" * 16).address("w") != KeyedHash(b"b" * 16).address("w")
        )

    def test_callable_form(self):
        kh = KeyedHash(b"x" * 16)
        assert kh("w") == kh.address("w")

    def test_rejects_bad_width(self):
        with pytest.raises(ParameterError):
            KeyedHash(b"x" * 16, output_bits=12)
        with pytest.raises(ParameterError):
            KeyedHash(b"x" * 16, output_bits=0)

    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            KeyedHash(b"")

    def test_check_width_accepts_reasonable_vocabulary(self):
        KeyedHash(b"x" * 16).check_width(10**6)

    def test_check_width_rejects_tiny_address_space(self):
        kh = KeyedHash(b"x" * 16, output_bits=8)
        with pytest.raises(ParameterError):
            kh.check_width(300)

    def test_check_width_rejects_bad_vocabulary(self):
        with pytest.raises(ParameterError):
            KeyedHash(b"x" * 16).check_width(0)

    def test_no_collisions_over_synthetic_vocabulary(self):
        kh = KeyedHash(b"x" * 16)
        addresses = {kh.address(f"word-{i}") for i in range(5000)}
        assert len(addresses) == 5000
