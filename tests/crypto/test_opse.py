"""Unit and property tests for deterministic OPSE."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.opse import (
    Interval,
    OrderPreservingEncryption,
    bucket_for_plaintext,
    plaintext_for_ciphertext,
)
from repro.errors import DomainError, ParameterError, RangeError

KEY = b"opse-test-key-01"


class TestInterval:
    def test_size(self):
        assert Interval(3, 7).size == 5

    def test_single_point(self):
        assert Interval(4, 4).size == 1

    def test_contains(self):
        interval = Interval(2, 5)
        assert 2 in interval and 5 in interval and 3 in interval
        assert 1 not in interval and 6 not in interval
        assert "3" not in interval

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            Interval(5, 4)


class TestConstruction:
    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            OrderPreservingEncryption(b"", 4, 16)

    def test_rejects_domain_larger_than_range(self):
        with pytest.raises(ParameterError):
            OrderPreservingEncryption(KEY, 100, 50)

    def test_rejects_non_positive_domain(self):
        with pytest.raises(ParameterError):
            OrderPreservingEncryption(KEY, 0, 50)

    def test_exposes_domain_and_range(self):
        opse = OrderPreservingEncryption(KEY, 16, 256)
        assert opse.domain.size == 16
        assert opse.range.size == 256


class TestOrderPreservation:
    def test_full_domain_strictly_increasing(self):
        opse = OrderPreservingEncryption(KEY, 64, 1 << 16)
        ciphertexts = [opse.encrypt(m) for m in range(1, 65)]
        assert all(a < b for a, b in zip(ciphertexts, ciphertexts[1:]))

    def test_ciphertexts_within_range(self):
        opse = OrderPreservingEncryption(KEY, 32, 1 << 12)
        for m in range(1, 33):
            assert opse.encrypt(m) in opse.range

    def test_deterministic(self):
        opse = OrderPreservingEncryption(KEY, 16, 1 << 10)
        assert opse.encrypt(7) == opse.encrypt(7)

    def test_key_sensitivity(self):
        a = OrderPreservingEncryption(b"a" * 16, 16, 1 << 16)
        b = OrderPreservingEncryption(b"b" * 16, 16, 1 << 16)
        assert [a.encrypt(m) for m in range(1, 17)] != [
            b.encrypt(m) for m in range(1, 17)
        ]

    def test_domain_equals_range_is_identity_permutation_sizes(self):
        # M == N forces every bucket to a single point covering the
        # whole range bijectively.
        opse = OrderPreservingEncryption(KEY, 8, 8)
        ciphertexts = sorted(opse.encrypt(m) for m in range(1, 9))
        assert ciphertexts == list(range(1, 9))

    def test_single_point_domain(self):
        opse = OrderPreservingEncryption(KEY, 1, 100)
        assert 1 <= opse.encrypt(1) <= 100

    @settings(max_examples=25, deadline=None)
    @given(
        domain_size=st.integers(min_value=2, max_value=64),
        range_bits=st.integers(min_value=8, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_order_preserved_for_random_parameters(
        self, domain_size, range_bits, seed
    ):
        key = seed.to_bytes(8, "big") + b"k" * 8
        opse = OrderPreservingEncryption(key, domain_size, 1 << range_bits)
        previous = 0
        for m in range(1, domain_size + 1):
            ciphertext = opse.encrypt(m)
            assert ciphertext > previous
            previous = ciphertext


class TestDecrypt:
    def test_roundtrip_full_domain(self):
        opse = OrderPreservingEncryption(KEY, 48, 1 << 14)
        for m in range(1, 49):
            assert opse.decrypt(opse.encrypt(m)) == m

    def test_verify_rejects_non_canonical_bucket_points(self):
        opse = OrderPreservingEncryption(KEY, 4, 1 << 12)
        bucket = opse.bucket(2)
        canonical = opse.encrypt(2)
        non_canonical = (
            bucket.low if canonical != bucket.low else bucket.low + 1
        )
        if bucket.size > 1:
            with pytest.raises(RangeError):
                opse.decrypt(non_canonical, verify=True)
            assert opse.decrypt(non_canonical, verify=False) == 2

    def test_rejects_out_of_range_ciphertext(self):
        opse = OrderPreservingEncryption(KEY, 4, 256)
        with pytest.raises(RangeError):
            opse.decrypt(0)
        with pytest.raises(RangeError):
            opse.decrypt(257)

    def test_rejects_out_of_domain_plaintext(self):
        opse = OrderPreservingEncryption(KEY, 4, 256)
        with pytest.raises(DomainError):
            opse.encrypt(0)
        with pytest.raises(DomainError):
            opse.encrypt(5)


class TestBuckets:
    def test_buckets_disjoint_and_ordered(self):
        opse = OrderPreservingEncryption(KEY, 16, 1 << 12)
        buckets = [opse.bucket(m) for m in range(1, 17)]
        for earlier, later in zip(buckets, buckets[1:]):
            assert earlier.high < later.low

    def test_buckets_cover_subsets_of_range(self):
        opse = OrderPreservingEncryption(KEY, 16, 1 << 12)
        total = sum(opse.bucket(m).size for m in range(1, 17))
        assert total <= opse.range.size

    def test_every_bucket_nonempty(self):
        opse = OrderPreservingEncryption(KEY, 32, 64)
        assert all(opse.bucket(m).size >= 1 for m in range(1, 33))

    def test_bucket_recursion_rounds_logarithmic(self):
        result = bucket_for_plaintext(
            KEY, Interval(1, 128), Interval(1, 1 << 30), 64
        )
        # log2(128) = 7 splits of the domain minimum; the range halving
        # can add more, bounded well below the paper's 5 log M + 12.
        assert 7 <= result.rounds <= 5 * 7 + 12 + 10

    def test_ciphertext_descent_matches_plaintext_descent(self):
        domain = Interval(1, 32)
        range_ = Interval(1, 1 << 16)
        for m in range(1, 33):
            forward = bucket_for_plaintext(KEY, domain, range_, m)
            for probe in (forward.bucket.low, forward.bucket.high):
                backward = plaintext_for_ciphertext(KEY, domain, range_, probe)
                assert backward.plaintext == m
                assert backward.bucket == forward.bucket
