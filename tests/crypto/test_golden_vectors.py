"""Golden vectors pinning the crypto layer's exact output bytes.

Every value below was captured from the pre-fast-path implementation
(the PR-2 tree), so these tests are the contract that the shared split
cache, the pre-keyed tape, the batch bucket tables, and the early-exit
HGD quantile change **nothing** about what the scheme emits: same
buckets, same ciphertexts, same tape bytes, same index bytes.

If one of these fails, the fast path broke ciphertext compatibility —
do not re-pin the vectors to make it pass.
"""

import hashlib
import random

from repro.core.params import TEST_PARAMETERS
from repro.core.rsse import EfficientRSSE
from repro.crypto.hgd import hgd_quantile, hgd_quantile_reference
from repro.crypto.keys import SchemeKey
from repro.crypto.opm import OneToManyOpm
from repro.crypto.opse import OrderPreservingEncryption
from repro.crypto.tape import CoinStream, KeyedTape, encode_context
from repro.ir.inverted_index import InvertedIndex

KEY = bytes(range(32))

# plaintext -> (ciphertext, (bucket.low, bucket.high)) for the full
# domain of OPSE(KEY, M=16, N=1024).
OPSE_SMALL = {
    1: (207, (1, 256)),
    2: (335, (257, 384)),
    3: (430, (417, 432)),
    4: (438, (433, 448)),
    5: (462, (449, 480)),
    6: (507, (481, 512)),
    7: (583, (513, 640)),
    8: (659, (641, 704)),
    9: (707, (705, 768)),
    10: (773, (769, 800)),
    11: (823, (801, 832)),
    12: (883, (881, 888)),
    13: (889, (889, 896)),
    14: (899, (897, 928)),
    15: (948, (929, 960)),
    16: (1001, (961, 1024)),
}

# Same shape at the paper's parameters (M=128, N=2**46).
OPSE_PAPER = {
    1: (1041427053160, (1, 1099511627776)),
    2: (1438694436634, (1099511627777, 2199023255552)),
    17: (8994823569112, (8967891714049, 9002251452416)),
    64: (33979675155494, (33535104647169, 34084860461056)),
    100: (56778159276998, (56075093016577, 57174604644352)),
    127: (70145646497010, (70128226009089, 70162585747456)),
    128: (70233595553928, (70231305224193, 70368744177664)),
}

# (score, file_id) -> OPM(KEY, M=16, N=1024) mapped value.
OPM_SMALL = {
    (1, b"file-a"): 59,
    (1, b"file-b"): 14,
    (1, b"zzz"): 75,
    (5, b"file-a"): 475,
    (5, b"file-b"): 468,
    (5, b"zzz"): 452,
    (16, b"file-a"): 1019,
    (16, b"file-b"): 1024,
    (16, b"zzz"): 978,
}

# (score, file_id) -> OPM(KEY, M=128, N=2**46) mapped value.
OPM_PAPER = {
    (1, b"file-a"): 384056263515,
    (1, b"file-b"): 453435697173,
    (33, b"file-a"): 19676439246394,
    (33, b"file-b"): 19666693188909,
    (64, b"file-a"): 33993021551379,
    (64, b"file-b"): 33788617183455,
    (128, b"file-a"): 70263781532743,
    (128, b"file-b"): 70287897608449,
}

# context tuple -> first 48 tape bytes of CoinStream(KEY, context).
TAPE_VECTORS = {
    (1, 1024, 0, 512): (
        "80744d2f2283544c1f717c10a6381363005404c5c06f463fbe000370191cce73"
        "bcc71792cd054692d5f9c2ad90f2930b"
    ),
    (5, 10, 1, 7, b"fid"): (
        "c7a23e64141b641ce435a34d9c339c5faa78d0b964a6369faf626d7fc5b0aa1f"
        "a7f5ded7b5d48fe770523b600da69b72"
    ),
}

# (context, low, high) -> CoinStream(KEY, context).choice(low, high).
CHOICE_VECTORS = {
    ((1, 1024, 0, 512), 1, 1024): 514,
    ((3, 99, 1, 50, b"f"), 3, 99): 97,
    ((1, 2, 1, 1, b"g"), 1, 2): 2,
}

# (u, population, successes, draws) -> hgd_quantile value.
HGD_VECTORS = {
    (0.5, 70368744177664, 128, 35184372088832): 64,
    (0.0001, 2048, 2048, 1024): 1024,
    (0.73, 1073741824, 1024, 536870912): 522,
    (0.25, 70368744177664, 128, 1099511627776): 1,
    (0.999, 1000, 500, 300): 172,
    (0.0, 7, 3, 5): 1,
}

# SHA-256 over (address || entries...) of the secure index built below.
INDEX_DIGEST = "a8ea84ad02a7c4de3b1e35586c472f124369e1ef1f2a8586c247f80438b07005"


class TestOpseGoldens:
    def test_small_domain_full_sweep(self):
        opse = OrderPreservingEncryption(KEY, 16, 1024)
        for pt, (ct, (low, high)) in OPSE_SMALL.items():
            bucket = opse.bucket(pt)
            assert (bucket.low, bucket.high) == (low, high)
            assert opse.encrypt(pt) == ct
            assert opse.decrypt(ct) == pt

    def test_small_domain_uncached(self):
        opse = OrderPreservingEncryption(KEY, 16, 1024, cache_splits=False)
        for pt, (ct, _) in OPSE_SMALL.items():
            assert opse.encrypt(pt) == ct

    def test_paper_parameters(self):
        opse = OrderPreservingEncryption(KEY, 128, 1 << 46)
        for pt, (ct, (low, high)) in OPSE_PAPER.items():
            bucket = opse.bucket(pt)
            assert (bucket.low, bucket.high) == (low, high)
            assert opse.encrypt(pt) == ct
            assert opse.decrypt(ct) == pt

    def test_bucket_table_matches_goldens(self):
        opse = OrderPreservingEncryption(KEY, 16, 1024)
        table = opse.bucket_table()
        assert set(table) == set(range(1, 17))
        for pt, (_, (low, high)) in OPSE_SMALL.items():
            assert (table[pt].low, table[pt].high) == (low, high)


class TestOpmGoldens:
    def test_small_domain(self):
        opm = OneToManyOpm(KEY, 16, 1024)
        for (score, fid), value in OPM_SMALL.items():
            assert opm.map_score(score, fid) == value
            assert opm.invert(value) == score

    def test_small_domain_uncached(self):
        opm = OneToManyOpm(KEY, 16, 1024, cache_buckets=False)
        for (score, fid), value in OPM_SMALL.items():
            assert opm.map_score(score, fid) == value

    def test_paper_parameters(self):
        opm = OneToManyOpm(KEY, 128, 1 << 46)
        for (score, fid), value in OPM_PAPER.items():
            assert opm.map_score(score, fid) == value
            assert opm.invert(value) == score

    def test_batch_matches_goldens(self):
        opm = OneToManyOpm(KEY, 128, 1 << 46)
        items = list(OPM_PAPER)
        assert opm.map_scores(items) == list(OPM_PAPER.values())

    def test_buckets_table_contains_golden_values(self):
        opm = OneToManyOpm(KEY, 16, 1024)
        table = opm.buckets_table()
        for (score, _), value in OPM_SMALL.items():
            assert table[score].low <= value <= table[score].high


class TestTapeGoldens:
    def test_stream_bytes(self):
        for context, hexdigest in TAPE_VECTORS.items():
            assert CoinStream(KEY, context).bytes(48).hex() == hexdigest

    def test_prekeyed_stream_bytes(self):
        tape = KeyedTape(KEY)
        for context, hexdigest in TAPE_VECTORS.items():
            assert tape.stream(context).bytes(48).hex() == hexdigest

    def test_choices(self):
        tape = KeyedTape(KEY)
        for (context, low, high), value in CHOICE_VECTORS.items():
            assert CoinStream(KEY, context).choice(low, high) == value
            assert tape.choice(encode_context(context), low, high) == value


class TestHgdGoldens:
    def test_quantiles(self):
        for (u, population, successes, draws), value in HGD_VECTORS.items():
            assert hgd_quantile(u, population, successes, draws) == value
            assert (
                hgd_quantile_reference(u, population, successes, draws)
                == value
            )


class TestIndexGolden:
    def test_build_digest(self):
        """End-to-end: the secure index's bytes are pinned exactly."""
        rng = random.Random(99)
        words = [f"kw{i}" for i in range(8)]
        index = InvertedIndex()
        for d in range(12):
            index.add_document(
                f"doc{d}",
                [rng.choice(words) for _ in range(rng.randint(4, 20))],
            )
        key = SchemeKey(
            x=b"x" * 16,
            y=b"y" * 16,
            z=b"z" * 16,
            domain_size=TEST_PARAMETERS.score_levels,
            range_size=TEST_PARAMETERS.range_size,
        )
        built = EfficientRSSE(TEST_PARAMETERS).build_index(key, index)
        h = hashlib.sha256()
        for address, entries in built.secure_index.items():
            h.update(address)
            for entry in entries:
                h.update(entry)
        assert h.hexdigest() == INDEX_DIGEST
