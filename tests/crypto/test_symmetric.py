"""Unit tests for the semantically secure cipher ``E``."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.symmetric import SymmetricCipher, random_bytes_like_ciphertext
from repro.errors import CryptoError, IntegrityError, ParameterError

KEY = b"sym-test-key-456"


class TestRoundtrip:
    def test_empty_plaintext(self):
        cipher = SymmetricCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(b"")) == b""

    def test_short_plaintext(self):
        cipher = SymmetricCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(b"hi")) == b"hi"

    def test_long_plaintext(self):
        cipher = SymmetricCipher(KEY)
        message = bytes(range(256)) * 100
        assert cipher.decrypt(cipher.encrypt(message)) == message

    @given(st.binary(min_size=0, max_size=500))
    def test_roundtrip_property(self, message):
        cipher = SymmetricCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(message)) == message


class TestRandomization:
    def test_equal_plaintexts_give_distinct_ciphertexts(self):
        cipher = SymmetricCipher(KEY)
        assert cipher.encrypt(b"same") != cipher.encrypt(b"same")

    def test_fixed_nonce_is_deterministic(self):
        cipher = SymmetricCipher(KEY)
        nonce = b"n" * 16
        assert cipher.encrypt(b"m", nonce) == cipher.encrypt(b"m", nonce)

    def test_rejects_bad_nonce_length(self):
        with pytest.raises(ParameterError):
            SymmetricCipher(KEY).encrypt(b"m", nonce=b"short")


class TestIntegrity:
    def test_flipped_body_bit_detected(self):
        cipher = SymmetricCipher(KEY)
        ciphertext = bytearray(cipher.encrypt(b"attack at dawn"))
        ciphertext[20] ^= 0x01
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(ciphertext))

    def test_flipped_nonce_bit_detected(self):
        cipher = SymmetricCipher(KEY)
        ciphertext = bytearray(cipher.encrypt(b"attack at dawn"))
        ciphertext[0] ^= 0x80
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(ciphertext))

    def test_truncated_tag_detected(self):
        cipher = SymmetricCipher(KEY)
        ciphertext = cipher.encrypt(b"msg")
        # XOR rather than overwrite: a fixed replacement byte collides
        # with the genuine tag byte once in 256 random nonces.
        tampered = ciphertext[:-1] + bytes([ciphertext[-1] ^ 0xFF])
        with pytest.raises(IntegrityError):
            cipher.decrypt(tampered)

    def test_wrong_key_detected(self):
        ciphertext = SymmetricCipher(KEY).encrypt(b"msg")
        with pytest.raises(IntegrityError):
            SymmetricCipher(b"other-key-000000").decrypt(ciphertext)

    def test_too_short_ciphertext(self):
        with pytest.raises(CryptoError):
            SymmetricCipher(KEY).decrypt(b"tiny")

    def test_random_bytes_fail_authentication(self):
        cipher = SymmetricCipher(KEY)
        blob = random_bytes_like_ciphertext(64)
        with pytest.raises(CryptoError):
            cipher.decrypt(blob)


class TestLengths:
    def test_constant_overhead(self):
        cipher = SymmetricCipher(KEY)
        for size in (0, 1, 10, 1000):
            assert len(cipher.encrypt(b"x" * size)) == size + cipher.overhead_bytes

    def test_ciphertext_length_helper(self):
        cipher = SymmetricCipher(KEY)
        assert cipher.ciphertext_length(40) == len(cipher.encrypt(b"y" * 40))

    def test_ciphertext_length_rejects_negative(self):
        with pytest.raises(ParameterError):
            SymmetricCipher(KEY).ciphertext_length(-1)

    def test_dummy_generator_length(self):
        assert len(random_bytes_like_ciphertext(77)) == 77

    def test_dummy_generator_rejects_negative(self):
        with pytest.raises(ParameterError):
            random_bytes_like_ciphertext(-1)


class TestIntEncoding:
    def test_roundtrip(self):
        cipher = SymmetricCipher(KEY)
        for value in (0, 1, 12345, 2**63):
            assert cipher.decrypt_int(cipher.encrypt_int(value)) == value

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            SymmetricCipher(KEY).encrypt_int(-1)

    def test_rejects_too_large(self):
        with pytest.raises(ParameterError):
            SymmetricCipher(KEY).encrypt_int(1 << 64)

    def test_decrypt_int_rejects_wrong_width(self):
        cipher = SymmetricCipher(KEY)
        ciphertext = cipher.encrypt(b"not-eight-bytes!!")
        with pytest.raises(CryptoError):
            cipher.decrypt_int(ciphertext)


class TestKeySeparation:
    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            SymmetricCipher(b"")

    def test_distinct_keys_distinct_streams(self):
        nonce = b"n" * 16
        a = SymmetricCipher(b"a" * 16).encrypt(b"m" * 32, nonce)
        b = SymmetricCipher(b"b" * 16).encrypt(b"m" * 32, nonce)
        assert a != b
