"""Unit and property tests for the hypergeometric quantile sampler."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hgd import (
    hgd_quantile,
    hgd_quantile_exact,
    hgd_quantile_reference,
    hgd_sample,
    log_pmf,
    mean,
    support,
)
from repro.crypto.tape import CoinStream
from repro.errors import ParameterError


class TestSupport:
    def test_basic_case(self):
        assert support(100, 10, 50) == (0, 10)

    def test_forced_lower_bound(self):
        # Drawing 95 of 100 with 10 marked: at least 5 marked drawn.
        assert support(100, 10, 95) == (5, 10)

    def test_draws_limit_upper_bound(self):
        assert support(100, 50, 3) == (0, 3)

    def test_degenerate_all_drawn(self):
        assert support(10, 4, 10) == (4, 4)

    def test_degenerate_none_drawn(self):
        assert support(10, 4, 0) == (0, 0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            support(0, 0, 0)
        with pytest.raises(ParameterError):
            support(10, 11, 5)
        with pytest.raises(ParameterError):
            support(10, 5, 11)
        with pytest.raises(ParameterError):
            support(10, -1, 5)


class TestLogPmf:
    def test_sums_to_one(self):
        lo, hi = support(60, 12, 30)
        total = sum(math.exp(log_pmf(x, 60, 12, 30)) for x in range(lo, hi + 1))
        assert total == pytest.approx(1.0, rel=1e-9)

    def test_outside_support_is_minus_infinity(self):
        assert log_pmf(-1, 60, 12, 30) == float("-inf")
        assert log_pmf(13, 60, 12, 30) == float("-inf")

    def test_matches_exact_combinatorics(self):
        for x in range(0, 6):
            exact = (
                math.comb(5, x) * math.comb(15, 10 - x) / math.comb(20, 10)
            )
            assert math.exp(log_pmf(x, 20, 5, 10)) == pytest.approx(exact)


class TestMean:
    def test_formula(self):
        assert mean(100, 10, 50) == pytest.approx(5.0)

    def test_validates(self):
        with pytest.raises(ParameterError):
            mean(10, 20, 5)


class TestQuantile:
    def test_u_zero_returns_support_low(self):
        assert hgd_quantile(0.0, 100, 10, 50) == 0
        assert hgd_quantile(0.0, 100, 10, 95) == 5

    def test_u_near_one_returns_support_high(self):
        assert hgd_quantile(1.0 - 1e-12, 100, 10, 50) == 10

    def test_monotone_in_u(self):
        values = [
            hgd_quantile(u / 100, 200, 30, 100) for u in range(0, 100, 5)
        ]
        assert values == sorted(values)

    def test_degenerate_support(self):
        assert hgd_quantile(0.5, 10, 4, 10) == 4

    def test_rejects_bad_quantile(self):
        with pytest.raises(ParameterError):
            hgd_quantile(1.0, 10, 4, 5)
        with pytest.raises(ParameterError):
            hgd_quantile(-0.1, 10, 4, 5)

    def test_median_near_mean(self):
        median = hgd_quantile(0.5, 10_000, 128, 5_000)
        assert abs(median - 64) <= 2

    def test_large_population(self):
        # The OPSE regime: population 2**46, small domain.
        value = hgd_quantile(0.5, 1 << 46, 128, 1 << 45)
        assert 0 <= value <= 128
        assert abs(value - 64) <= 2

    def test_huge_population_stays_in_support(self):
        lo, hi = support(1 << 60, 64, 1 << 59)
        for u in (0.0, 0.01, 0.5, 0.99):
            assert lo <= hgd_quantile(u, 1 << 60, 64, 1 << 59) <= hi

    @settings(max_examples=60, deadline=None)
    @given(
        population=st.integers(min_value=2, max_value=3000),
        data=st.data(),
    )
    def test_agrees_with_exact_rational_reference(self, population, data):
        successes = data.draw(
            st.integers(min_value=0, max_value=min(population, 120))
        )
        draws = data.draw(st.integers(min_value=0, max_value=population))
        u = data.draw(
            st.floats(min_value=0.0, max_value=0.999999, allow_nan=False)
        )
        fast = hgd_quantile(u, population, successes, draws)
        exact = hgd_quantile_exact(Fraction(u), population, successes, draws)
        # Float CDF inversion may disagree with the exact reference only
        # at a quantile lying on a CDF step boundary; never by more
        # than one step.
        assert abs(fast - exact) <= 1
        lo, hi = support(population, successes, draws)
        assert lo <= fast <= hi

    def test_agreement_is_exact_away_from_boundaries(self):
        for u in (0.07, 0.23, 0.41, 0.58, 0.76, 0.92):
            fast = hgd_quantile(u, 500, 40, 250)
            exact = hgd_quantile_exact(Fraction(u), 500, 40, 250)
            assert fast == exact


class TestAgainstScipy:
    def test_matches_scipy_ppf(self):
        hypergeom = pytest.importorskip("scipy.stats").hypergeom

        for (population, successes, draws) in [
            (100, 10, 50),
            (1000, 128, 500),
            (77, 20, 33),
        ]:
            for u in (0.05, 0.25, 0.5, 0.75, 0.95):
                ours = hgd_quantile(u, population, successes, draws)
                # scipy parameterizes as (M=population, n=successes, N=draws)
                theirs = int(hypergeom.ppf(u, population, successes, draws))
                assert ours == theirs


class TestSample:
    def test_deterministic_given_coins(self):
        a = hgd_sample(CoinStream(b"k" * 16, ("s",)), 1000, 50, 400)
        b = hgd_sample(CoinStream(b"k" * 16, ("s",)), 1000, 50, 400)
        assert a == b

    def test_varies_with_context(self):
        samples = {
            hgd_sample(CoinStream(b"k" * 16, (i,)), 10_000, 100, 5_000)
            for i in range(30)
        }
        assert len(samples) > 3

    def test_sample_mean_tracks_distribution_mean(self):
        total = sum(
            hgd_sample(CoinStream(b"k" * 16, ("m", i)), 2000, 40, 1000)
            for i in range(300)
        )
        assert total / 300 == pytest.approx(20.0, abs=1.5)


class TestEarlyExitEqualsReference:
    def test_sweep_small_parameters(self):
        for population in (1, 2, 17, 64, 257):
            for successes in (0, 1, population // 2, population):
                for draws in (0, 1, population // 3, population):
                    for u_step in range(0, 10):
                        u = u_step / 10
                        assert hgd_quantile(
                            u, population, successes, draws
                        ) == hgd_quantile_reference(
                            u, population, successes, draws
                        )

    def test_opse_shaped_parameters(self):
        population = 1 << 46
        for draws in (1, 1 << 20, 1 << 45, (1 << 46) - 1):
            for u in (0.0, 1e-9, 0.3, 0.5, 0.9999999999):
                assert hgd_quantile(
                    u, population, 128, draws
                ) == hgd_quantile_reference(u, population, 128, draws)

    def test_reference_rejects_bad_quantile(self):
        with pytest.raises(ParameterError):
            hgd_quantile_reference(1.0, 10, 4, 5)
