"""Unit tests for the TapeGen coin stream."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.tape import (
    CoinStream,
    KeyedTape,
    encode_context,
    tape_gen,
)
from repro.errors import ParameterError


class TestEncodeContext:
    def test_deterministic(self):
        assert encode_context((1, "a", b"b")) == encode_context((1, "a", b"b"))

    def test_type_tags_distinguish_str_and_bytes(self):
        assert encode_context(("a",)) != encode_context((b"a",))

    def test_int_vs_str_of_same_digits(self):
        assert encode_context((12,)) != encode_context(("12",))

    def test_length_framing_prevents_concatenation_collisions(self):
        assert encode_context(("ab", "c")) != encode_context(("a", "bc"))

    def test_negative_and_large_ints(self):
        assert encode_context((-5,)) != encode_context((5,))
        big = 1 << 200
        assert encode_context((big,)) != encode_context((big + 1,))

    def test_bool_distinct_from_int(self):
        assert encode_context((True,)) != encode_context((1,))

    def test_rejects_unsupported_type(self):
        with pytest.raises(ParameterError):
            encode_context((3.14,))


class TestCoinStream:
    def test_same_key_and_context_identical_output(self):
        a = CoinStream(b"k" * 16, (1, 2, "x"))
        b = CoinStream(b"k" * 16, (1, 2, "x"))
        assert a.bytes(100) == b.bytes(100)

    def test_different_context_different_output(self):
        a = CoinStream(b"k" * 16, (1,))
        b = CoinStream(b"k" * 16, (2,))
        assert a.bytes(32) != b.bytes(32)

    def test_different_key_different_output(self):
        a = CoinStream(b"a" * 16, (1,))
        b = CoinStream(b"b" * 16, (1,))
        assert a.bytes(32) != b.bytes(32)

    def test_stream_is_continuous(self):
        whole = CoinStream(b"k" * 16, ("s",)).bytes(64)
        piecewise_stream = CoinStream(b"k" * 16, ("s",))
        piecewise = piecewise_stream.bytes(10) + piecewise_stream.bytes(54)
        assert whole == piecewise

    def test_zero_bytes(self):
        assert CoinStream(b"k" * 16, ()).bytes(0) == b""

    def test_rejects_negative_lengths(self):
        stream = CoinStream(b"k" * 16, ())
        with pytest.raises(ParameterError):
            stream.bytes(-1)
        with pytest.raises(ParameterError):
            stream.bits(-1)

    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            CoinStream(b"", (1,))

    def test_bits_range(self):
        stream = CoinStream(b"k" * 16, ("bits",))
        for width in (1, 7, 13, 64, 200):
            value = stream.bits(width)
            assert 0 <= value < (1 << width)

    def test_uniform_int_bounds(self):
        stream = CoinStream(b"k" * 16, ("u",))
        for bound in (1, 2, 3, 10, 1000, 1 << 46):
            value = stream.uniform_int(bound)
            assert 0 <= value < bound

    def test_uniform_int_bound_one_consumes_no_coins(self):
        a = CoinStream(b"k" * 16, ("c",))
        b = CoinStream(b"k" * 16, ("c",))
        a.uniform_int(1)
        assert a.bytes(16) == b.bytes(16)

    def test_uniform_int_rejects_non_positive(self):
        stream = CoinStream(b"k" * 16, ())
        with pytest.raises(ParameterError):
            stream.uniform_int(0)

    def test_uniform_float_in_unit_interval(self):
        stream = CoinStream(b"k" * 16, ("f",))
        for _ in range(100):
            value = stream.uniform_float()
            assert 0.0 <= value < 1.0

    def test_choice_in_interval(self):
        stream = CoinStream(b"k" * 16, ("ch",))
        for _ in range(50):
            assert 5 <= stream.choice(5, 9) <= 9

    def test_choice_single_point(self):
        assert CoinStream(b"k" * 16, ()).choice(7, 7) == 7

    def test_choice_rejects_empty_interval(self):
        with pytest.raises(ParameterError):
            CoinStream(b"k" * 16, ()).choice(3, 2)

    def test_tape_gen_factory(self):
        a = tape_gen(b"k" * 16, (1, "a"))
        b = CoinStream(b"k" * 16, (1, "a"))
        assert a.bytes(32) == b.bytes(32)

    @given(st.integers(min_value=2, max_value=10_000))
    def test_uniform_int_always_below_bound(self, bound):
        stream = CoinStream(b"k" * 16, (bound,))
        assert all(stream.uniform_int(bound) < bound for _ in range(20))

    def test_uniform_int_covers_small_range(self):
        stream = CoinStream(b"k" * 16, ("coverage",))
        seen = {stream.uniform_int(4) for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_uniform_int_roughly_unbiased_on_non_power_of_two(self):
        stream = CoinStream(b"k" * 16, ("bias",))
        counts = [0, 0, 0]
        for _ in range(3000):
            counts[stream.uniform_int(3)] += 1
        for count in counts:
            assert 800 < count < 1200


class TestKeyedTape:
    def test_stream_matches_coin_stream(self):
        tape = KeyedTape(b"k" * 16)
        for context in [(1,), (1, 2, b"x"), ("s", 0, b"")]:
            assert (
                tape.stream(context).bytes(64)
                == CoinStream(b"k" * 16, context).bytes(64)
            )

    def test_stream_from_seed_matches_encoded_context(self):
        tape = KeyedTape(b"k" * 16)
        context = (5, 10, 1, 7, b"fid")
        seed = encode_context(context)
        assert (
            tape.stream_from_seed(seed).bytes(64)
            == CoinStream(b"k" * 16, context).bytes(64)
        )

    def test_choice_matches_coin_stream(self):
        tape = KeyedTape(b"k" * 16)
        for low, high in [(1, 1), (1, 2), (7, 1000), (0, (1 << 46) - 1)]:
            context = (low, high, b"probe")
            expected = CoinStream(b"k" * 16, context).choice(low, high)
            assert (
                tape.choice(encode_context(context), low, high) == expected
            )

    def test_choice_rejects_empty_interval(self):
        tape = KeyedTape(b"k" * 16)
        with pytest.raises(ParameterError):
            tape.choice(b"seed", 5, 4)

    def test_empty_key_rejected(self):
        with pytest.raises(ParameterError):
            KeyedTape(b"")

    def test_streams_are_independent(self):
        tape = KeyedTape(b"k" * 16)
        a = tape.stream((1,))
        b = tape.stream((2,))
        first = a.bytes(32)
        assert b.bytes(32) != first
        # Consuming one stream must not advance the other.
        assert tape.stream((1,)).bytes(32) == first
