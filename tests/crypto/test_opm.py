"""Unit and property tests for the one-to-many mapping (Algorithm 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.opm import OneToManyOpm
from repro.crypto.opse import OrderPreservingEncryption
from repro.errors import DomainError, ParameterError, RangeError

KEY = b"opm-test-key-123"


class TestConstruction:
    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            OneToManyOpm(b"", 16, 256)

    def test_rejects_range_below_domain(self):
        with pytest.raises(ParameterError):
            OneToManyOpm(KEY, 128, 64)

    def test_rejects_non_positive_domain(self):
        with pytest.raises(ParameterError):
            OneToManyOpm(KEY, 0, 64)


class TestOneToMany:
    def test_same_score_different_files_different_ciphertexts(self):
        opm = OneToManyOpm(KEY, 128, 1 << 46)
        values = {opm.map_score(64, f"file-{i}") for i in range(50)}
        assert len(values) == 50

    def test_same_score_same_file_deterministic(self):
        opm = OneToManyOpm(KEY, 128, 1 << 40)
        assert opm.map_score(10, "f") == opm.map_score(10, "f")

    def test_accepts_bytes_and_str_file_ids(self):
        opm = OneToManyOpm(KEY, 16, 1 << 20)
        assert opm.map_score(5, "abc") == opm.map_score(5, b"abc")

    def test_values_stay_in_assigned_bucket(self):
        opm = OneToManyOpm(KEY, 32, 1 << 24)
        for score in (1, 7, 16, 32):
            bucket = opm.bucket(score)
            for i in range(20):
                assert opm.map_score(score, f"d{i}") in bucket


class TestOrderPreservation:
    def test_strict_order_across_scores_any_file_pair(self):
        opm = OneToManyOpm(KEY, 64, 1 << 30)
        for low, high in [(1, 2), (10, 11), (30, 60), (63, 64)]:
            for i in range(10):
                assert opm.map_score(low, f"a{i}") < opm.map_score(
                    high, f"b{i}"
                )

    @settings(max_examples=25, deadline=None)
    @given(
        score_a=st.integers(min_value=1, max_value=64),
        score_b=st.integers(min_value=1, max_value=64),
        file_a=st.text(min_size=1, max_size=10),
        file_b=st.text(min_size=1, max_size=10),
    )
    def test_order_preserved_property(self, score_a, score_b, file_a, file_b):
        opm = OneToManyOpm(KEY, 64, 1 << 28)
        value_a = opm.map_score(score_a, file_a)
        value_b = opm.map_score(score_b, file_b)
        if score_a < score_b:
            assert value_a < value_b
        elif score_a > score_b:
            assert value_a > value_b


class TestInversion:
    def test_invert_recovers_score_for_any_file(self):
        opm = OneToManyOpm(KEY, 32, 1 << 24)
        for score in range(1, 33):
            for i in range(3):
                assert opm.invert(opm.map_score(score, f"f{i}")) == score

    def test_invert_rejects_out_of_range(self):
        opm = OneToManyOpm(KEY, 8, 256)
        with pytest.raises(RangeError):
            opm.invert(0)
        with pytest.raises(RangeError):
            opm.invert(257)

    def test_map_rejects_out_of_domain(self):
        opm = OneToManyOpm(KEY, 8, 256)
        with pytest.raises(DomainError):
            opm.map_score(0, "f")
        with pytest.raises(DomainError):
            opm.map_score(9, "f")


class TestBucketsMatchOpse:
    def test_buckets_equal_opse_buckets_under_same_key(self):
        """The OPM inherits OPSE's plaintext-to-bucket mapping unchanged."""
        opm = OneToManyOpm(KEY, 16, 1 << 20)
        opse = OrderPreservingEncryption(KEY, 16, 1 << 20)
        for score in range(1, 17):
            assert opm.bucket(score) == opse.bucket(score)

    def test_bucket_independent_of_file_id(self):
        opm = OneToManyOpm(KEY, 16, 1 << 20)
        bucket = opm.bucket(8)
        for i in range(20):
            assert opm.map_score(8, f"any-{i}") in bucket


class TestBucketCache:
    def test_cached_and_uncached_agree(self):
        cached = OneToManyOpm(KEY, 32, 1 << 24, cache_buckets=True)
        uncached = OneToManyOpm(KEY, 32, 1 << 24, cache_buckets=False)
        for score in (1, 5, 17, 32):
            assert cached.map_score(score, "f") == uncached.map_score(
                score, "f"
            )

    def test_cache_hit_returns_same_bucket(self):
        opm = OneToManyOpm(KEY, 16, 1 << 16)
        first = opm.bucket(3)
        second = opm.bucket(3)
        assert first == second


class TestKeySeparation:
    def test_different_keys_different_layouts(self):
        a = OneToManyOpm(b"a" * 16, 64, 1 << 30)
        b = OneToManyOpm(b"b" * 16, 64, 1 << 30)
        buckets_differ = any(
            a.bucket(score) != b.bucket(score) for score in range(1, 65)
        )
        assert buckets_differ

    def test_rounds_probe(self):
        opm = OneToManyOpm(KEY, 128, 1 << 40)
        rounds = opm.rounds(64)
        assert 7 <= rounds <= 5 * 7 + 12 + 10


class TestStatsCounters:
    def test_split_cache_caps_hgd_draws(self):
        """One full-table build costs ~1.6 M draws, not ~8.3 M."""
        M = 128
        opm = OneToManyOpm(KEY, M, 1 << 46)
        opm.buckets_table()
        table_draws = opm.stats.hgd_draws
        # One draw per split-tree internal node: more than the M - 1
        # pure halving splits (slack chains add some), far below the
        # per-descent total.
        assert M - 1 <= table_draws <= 3 * M
        naive = OneToManyOpm(KEY, M, 1 << 46, cache_buckets=False)
        for score in range(1, M + 1):
            naive.map_score(score, b"f")
        assert naive.stats.hgd_draws >= 5 * table_draws

    def test_batch_is_one_tape_block_per_entry(self):
        opm = OneToManyOpm(KEY, 16, 1 << 20)
        opm.buckets_table()
        opm.reset_stats()
        items = [(1 + (i % 16), b"file-%d" % i) for i in range(200)]
        opm.map_scores(items)
        assert opm.stats.choices == 200
        # One HMAC block per entry plus rare rejection-sampling retries.
        assert 200 <= opm.stats.tape_blocks <= 240
        assert opm.stats.hgd_draws == 0  # table already built

    def test_cached_regime_descends_once_per_score(self):
        opm = OneToManyOpm(KEY, 16, 1 << 20)
        for _ in range(5):
            opm.map_score(7, b"f")
        assert opm.stats.bucket_cache_misses == 1
        assert opm.stats.bucket_cache_hits == 4
        assert opm.stats.descents == 1

    def test_uncached_regime_keeps_no_cross_call_state(self):
        """Fig. 7 honesty: every probe call pays the full descent."""
        opm = OneToManyOpm(KEY, 16, 1 << 20, cache_buckets=False)
        opm.map_score(7, b"f")
        first = opm.stats.hgd_draws
        assert first > 0
        opm.map_score(7, b"f")
        assert opm.stats.hgd_draws == 2 * first
        assert opm.stats.split_cache_hits == 0
        # buckets_table() probing must not leak state either.
        opm.reset_stats()
        opm.buckets_table()
        opm.map_score(7, b"f")
        assert opm.stats.hgd_draws > first

    def test_reset_stats_zeroes_but_keeps_caches(self):
        opm = OneToManyOpm(KEY, 16, 1 << 20)
        opm.map_score(3, b"f")
        opm.reset_stats()
        assert opm.stats.as_dict() == {
            key: 0 for key in opm.stats.as_dict()
        }
        opm.map_score(3, b"g")
        assert opm.stats.bucket_cache_hits == 1
        assert opm.stats.hgd_draws == 0
