"""Unit and property tests for the Feistel PRP."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.prp import FeistelPrp
from repro.errors import ParameterError

KEY = b"prp-test-key-789"


class TestBijectivity:
    @pytest.mark.parametrize("domain_size", [2, 3, 7, 16, 100, 257, 1000])
    def test_is_permutation(self, domain_size):
        prp = FeistelPrp(KEY, domain_size)
        images = [prp.permute(i) for i in range(domain_size)]
        assert sorted(images) == list(range(domain_size))

    @pytest.mark.parametrize("domain_size", [2, 9, 64, 333])
    def test_invert_is_inverse(self, domain_size):
        prp = FeistelPrp(KEY, domain_size)
        for value in range(domain_size):
            assert prp.invert(prp.permute(value)) == value
            assert prp.permute(prp.invert(value)) == value

    @settings(max_examples=30, deadline=None)
    @given(
        domain_size=st.integers(min_value=2, max_value=5000),
        value=st.integers(min_value=0, max_value=4999),
    )
    def test_roundtrip_property(self, domain_size, value):
        value %= domain_size
        prp = FeistelPrp(KEY, domain_size)
        assert prp.invert(prp.permute(value)) == value


class TestDeterminismAndKeys:
    def test_deterministic(self):
        a = FeistelPrp(KEY, 100)
        b = FeistelPrp(KEY, 100)
        assert a.permutation() == b.permutation()

    def test_key_sensitivity(self):
        a = FeistelPrp(b"a" * 16, 100)
        b = FeistelPrp(b"b" * 16, 100)
        assert a.permutation() != b.permutation()

    def test_permutation_materialization(self):
        prp = FeistelPrp(KEY, 10)
        assert prp.permutation() == [prp.permute(i) for i in range(10)]

    def test_not_identity_for_reasonable_domains(self):
        prp = FeistelPrp(KEY, 1000)
        moved = sum(1 for i in range(1000) if prp.permute(i) != i)
        assert moved > 900


class TestValidation:
    def test_rejects_empty_key(self):
        with pytest.raises(ParameterError):
            FeistelPrp(b"", 10)

    def test_rejects_tiny_domain(self):
        with pytest.raises(ParameterError):
            FeistelPrp(KEY, 1)

    def test_rejects_out_of_domain_values(self):
        prp = FeistelPrp(KEY, 10)
        with pytest.raises(ParameterError):
            prp.permute(10)
        with pytest.raises(ParameterError):
            prp.permute(-1)
        with pytest.raises(ParameterError):
            prp.invert(10)

    def test_domain_size_property(self):
        assert FeistelPrp(KEY, 42).domain_size == 42
