"""Unit tests for KeyGen and the SchemeKey bundle."""

import pytest

from repro.crypto.keys import SchemeKey, keygen
from repro.errors import CryptoError, ParameterError


class TestKeygen:
    def test_default_shape(self):
        key = keygen()
        assert len(key.x) == 16
        assert len(key.y) == 16
        assert key.z is not None and len(key.z) == 16
        assert key.domain_size == 128
        assert key.range_size == 1 << 46

    def test_custom_lengths(self):
        key = keygen(security_bytes=32)
        assert len(key.x) == len(key.y) == len(key.z) == 32

    def test_custom_opm_parameters(self):
        key = keygen(domain_size=64, range_size=1 << 24)
        assert key.domain_size == 64
        assert key.range_size == 1 << 24

    def test_keys_are_independent_draws(self):
        key = keygen()
        assert key.x != key.y != key.z
        assert keygen().x != key.x


class TestSchemeKeyValidation:
    def test_rejects_empty_x(self):
        with pytest.raises(ParameterError):
            SchemeKey(x=b"", y=b"y" * 16, z=b"z" * 16)

    def test_rejects_empty_z_when_present(self):
        with pytest.raises(ParameterError):
            SchemeKey(x=b"x" * 16, y=b"y" * 16, z=b"")

    def test_allows_missing_z(self):
        key = SchemeKey(x=b"x" * 16, y=b"y" * 16, z=None)
        assert key.z is None

    def test_rejects_range_below_domain(self):
        with pytest.raises(ParameterError):
            SchemeKey(
                x=b"x" * 16, y=b"y" * 16, z=b"z" * 16,
                domain_size=128, range_size=64,
            )

    def test_rejects_non_positive_domain(self):
        with pytest.raises(ParameterError):
            SchemeKey(
                x=b"x" * 16, y=b"y" * 16, z=b"z" * 16,
                domain_size=0, range_size=64,
            )


class TestTrapdoorOnly:
    def test_strips_z(self):
        key = keygen()
        user_key = key.trapdoor_only()
        assert user_key.z is None
        assert user_key.x == key.x and user_key.y == key.y

    def test_require_z_raises_on_user_bundle(self):
        user_key = keygen().trapdoor_only()
        with pytest.raises(CryptoError):
            user_key.require_z()

    def test_require_z_returns_owner_z(self):
        key = keygen()
        assert key.require_z() == key.z


class TestSerialization:
    def test_roundtrip_full_bundle(self):
        key = keygen()
        assert SchemeKey.deserialize(key.serialize()) == key

    def test_roundtrip_user_bundle(self):
        key = keygen().trapdoor_only()
        assert SchemeKey.deserialize(key.serialize()) == key

    def test_rejects_garbage(self):
        with pytest.raises(CryptoError):
            SchemeKey.deserialize(b"\xff\x00 not json")

    def test_rejects_wrong_magic(self):
        with pytest.raises(CryptoError):
            SchemeKey.deserialize(b'{"magic": "something-else"}')

    def test_rejects_wrong_version(self):
        key = keygen()
        tampered = key.serialize().replace(b'"version": 1', b'"version": 99')
        with pytest.raises(CryptoError):
            SchemeKey.deserialize(tampered)
