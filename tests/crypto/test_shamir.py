"""Unit and property tests for Shamir secret sharing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.shamir import (
    PRIME,
    SECRET_BYTES,
    Share,
    random_secret,
    reconstruct,
    reconstruct_int,
    split,
    split_int,
)
from repro.errors import CryptoError, ParameterError


class TestSplitReconstruct:
    def test_basic_roundtrip(self):
        secret = random_secret()
        shares = split(secret, threshold=3, shares=5)
        assert reconstruct(shares[:3], 3) == secret

    def test_any_subset_of_threshold_size_works(self):
        secret = random_secret()
        shares = split(secret, threshold=2, shares=4)
        import itertools

        for subset in itertools.combinations(shares, 2):
            assert reconstruct(list(subset), 2) == secret

    def test_one_of_one(self):
        secret = random_secret()
        (share,) = split(secret, threshold=1, shares=1)
        assert reconstruct([share], 1) == secret

    def test_n_of_n(self):
        secret = random_secret()
        shares = split(secret, threshold=6, shares=6)
        assert reconstruct(shares, 6) == secret

    def test_too_few_shares_rejected(self):
        shares = split(random_secret(), threshold=3, shares=5)
        with pytest.raises(CryptoError):
            reconstruct(shares[:2], 3)

    def test_duplicate_shares_do_not_count_twice(self):
        shares = split(random_secret(), threshold=3, shares=5)
        with pytest.raises(CryptoError):
            reconstruct([shares[0], shares[0], shares[0]], 3)

    def test_wrong_threshold_share_mix_gives_wrong_secret(self):
        secret = random_secret()
        shares_a = split(secret, threshold=2, shares=3)
        shares_b = split(random_secret(), threshold=2, shares=3)
        mixed = [shares_a[0], shares_b[1]]
        try:
            recovered = reconstruct(mixed, 2)
            assert recovered != secret
        except CryptoError:
            pass  # out-of-space reconstruction also acceptable

    def test_validation(self):
        with pytest.raises(ParameterError):
            split(b"short", 1, 1)
        with pytest.raises(ParameterError):
            split(random_secret(), 0, 1)
        with pytest.raises(ParameterError):
            split(random_secret(), 3, 2)
        with pytest.raises(ParameterError):
            reconstruct([], 0)


class TestIntForm:
    def test_field_element_roundtrip(self):
        value = PRIME - 12345
        shares = split_int(value, 4, 7)
        assert reconstruct_int(shares[2:6], 4) == value

    def test_zero_secret(self):
        shares = split_int(0, 2, 3)
        assert reconstruct_int(shares[:2], 2) == 0

    def test_rejects_out_of_field(self):
        with pytest.raises(ParameterError):
            split_int(PRIME, 1, 1)
        with pytest.raises(ParameterError):
            split_int(-1, 1, 1)

    def test_recursive_sharing(self):
        """A share's value can itself be shared (the policy-tree use)."""
        value = 123456789
        outer = split_int(value, 2, 2)
        inner = split_int(outer[0].y, 2, 3)
        recovered_inner = reconstruct_int(inner[:2], 2)
        assert recovered_inner == outer[0].y
        assert (
            reconstruct_int([Share(1, recovered_inner), outer[1]], 2) == value
        )


class TestShareValidation:
    def test_rejects_bad_points(self):
        with pytest.raises(ParameterError):
            Share(x=0, y=1)
        with pytest.raises(ParameterError):
            Share(x=1, y=PRIME)
        with pytest.raises(ParameterError):
            Share(x=1, y=-1)


@settings(max_examples=30, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=PRIME - 1),
    threshold=st.integers(min_value=1, max_value=6),
    extra=st.integers(min_value=0, max_value=4),
)
def test_roundtrip_property(value, threshold, extra):
    shares = split_int(value, threshold, threshold + extra)
    assert reconstruct_int(shares[extra:], threshold) == value


@settings(max_examples=20, deadline=None)
@given(secret=st.binary(min_size=SECRET_BYTES, max_size=SECRET_BYTES))
def test_byte_roundtrip_property(secret):
    shares = split(secret, 3, 5)
    assert reconstruct(shares[1:4], 3) == secret
