"""Unit and property tests for top-k selection and full ranking."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.ir.topk import rank_all, top_k


class TestTopK:
    def test_selects_largest(self):
        items = [("a", 3), ("b", 9), ("c", 1), ("d", 7)]
        best = top_k(items, 2, key=lambda pair: pair[1])
        assert best == [("b", 9), ("d", 7)]

    def test_descending_order(self):
        values = list(range(100))
        best = top_k(values, 10, key=lambda v: v)
        assert best == list(range(99, 89, -1))

    def test_k_larger_than_input(self):
        assert top_k([3, 1, 2], 10, key=lambda v: v) == [3, 2, 1]

    def test_k_equal_input(self):
        assert top_k([3, 1, 2], 3, key=lambda v: v) == [3, 2, 1]

    def test_empty_input(self):
        assert top_k([], 5, key=lambda v: v) == []

    def test_rejects_non_positive_k(self):
        with pytest.raises(ParameterError):
            top_k([1, 2], 0, key=lambda v: v)

    def test_ties_break_toward_earlier_items(self):
        items = [("first", 5), ("second", 5), ("third", 5)]
        assert top_k(items, 2, key=lambda pair: pair[1]) == [
            ("first", 5), ("second", 5),
        ]

    def test_consumes_generator(self):
        best = top_k((v for v in [4, 8, 2]), 1, key=lambda v: v)
        assert best == [8]

    def test_works_with_huge_integer_keys(self):
        # OPM values are ~2**46; ensure no float conversion sneaks in.
        items = [("a", (1 << 46) + 1), ("b", 1 << 46)]
        assert top_k(items, 1, key=lambda pair: pair[1]) == [
            ("a", (1 << 46) + 1)
        ]

    @given(
        st.lists(st.integers(min_value=-1000, max_value=1000), max_size=200),
        st.integers(min_value=1, max_value=50),
    )
    def test_matches_sorted_prefix(self, values, k):
        expected = sorted(values, reverse=True)[:k]
        actual = top_k(values, k, key=lambda v: v)
        assert actual == expected


class TestRankAll:
    def test_full_descending_sort(self):
        assert rank_all([2, 9, 4], key=lambda v: v) == [9, 4, 2]

    def test_stable_for_ties(self):
        items = [("x", 1), ("y", 1)]
        assert rank_all(items, key=lambda pair: pair[1]) == items

    def test_agrees_with_topk_when_k_is_n(self):
        values = [5, 3, 8, 8, 1, 9]
        assert rank_all(values, key=lambda v: v) == top_k(
            values, len(values), key=lambda v: v
        )

    def test_empty(self):
        assert rank_all([], key=lambda v: v) == []
