"""Unit tests for equations 1-2 and score quantization."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import (
    ScoreQuantizer,
    idf_factor,
    query_score,
    score_posting_list,
    single_keyword_score,
)


class TestEquation2:
    def test_formula_value(self):
        # (1/10) * (1 + ln 5)
        assert single_keyword_score(5, 10) == pytest.approx(
            (1 + math.log(5)) / 10
        )

    def test_tf_one(self):
        assert single_keyword_score(1, 100) == pytest.approx(0.01)

    def test_monotone_in_tf(self):
        scores = [single_keyword_score(tf, 50) for tf in range(1, 20)]
        assert scores == sorted(scores)

    def test_decreasing_in_length(self):
        assert single_keyword_score(3, 10) > single_keyword_score(3, 20)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            single_keyword_score(0, 10)
        with pytest.raises(ParameterError):
            single_keyword_score(2, 0)


class TestIdf:
    def test_formula_value(self):
        assert idf_factor(1000, 10) == pytest.approx(math.log(101))

    def test_rare_terms_weigh_more(self):
        assert idf_factor(1000, 5) > idf_factor(1000, 500)

    def test_rejects_inconsistent_frequencies(self):
        with pytest.raises(ParameterError):
            idf_factor(100, 0)
        with pytest.raises(ParameterError):
            idf_factor(100, 101)
        with pytest.raises(ParameterError):
            idf_factor(0, 0)


class TestEquation1:
    def test_single_term_consistency(self):
        # Equation 1 with one query term = equation 2 * IDF.
        score = query_score({"net": 4}, {"net": 20}, file_length=10,
                            collection_size=100)
        expected = single_keyword_score(4, 10) * idf_factor(100, 20)
        assert score == pytest.approx(expected)

    def test_sums_over_terms(self):
        combined = query_score(
            {"a": 2, "b": 3},
            {"a": 10, "b": 20},
            file_length=15,
            collection_size=100,
        )
        separate = query_score(
            {"a": 2}, {"a": 10}, 15, 100
        ) + query_score({"b": 3}, {"b": 20}, 15, 100)
        assert combined == pytest.approx(separate)

    def test_absent_terms_contribute_nothing(self):
        with_term = query_score({"a": 2}, {"a": 10, "b": 20}, 15, 100)
        assert with_term == pytest.approx(
            query_score({"a": 2}, {"a": 10}, 15, 100)
        )

    def test_rejects_missing_document_frequency(self):
        with pytest.raises(ParameterError):
            query_score({"a": 2}, {}, 10, 100)

    def test_rejects_bad_tf(self):
        with pytest.raises(ParameterError):
            query_score({"a": 0}, {"a": 5}, 10, 100)


class TestScorePostingList:
    def test_scores_whole_list(self):
        index = InvertedIndex()
        index.add_document("d1", ["x"] * 4 + ["pad"] * 6)
        index.add_document("d2", ["x"] * 1 + ["pad"] * 4)
        scores = score_posting_list(index, "x")
        assert scores["d1"] == pytest.approx(single_keyword_score(4, 10))
        assert scores["d2"] == pytest.approx(single_keyword_score(1, 5))

    def test_unknown_term_empty(self):
        index = InvertedIndex()
        index.add_document("d1", ["x"])
        assert score_posting_list(index, "zzz") == {}


class TestQuantizer:
    def test_levels_span(self):
        quantizer = ScoreQuantizer(levels=128, scale=1.0)
        assert quantizer.quantize(0.0) == 1
        assert quantizer.quantize(1.0) == 128
        assert quantizer.quantize(0.5) == 64

    def test_clamps_above_scale(self):
        quantizer = ScoreQuantizer(levels=128, scale=1.0)
        assert quantizer.quantize(5.0) == 128

    def test_monotone(self):
        quantizer = ScoreQuantizer(levels=64, scale=2.0)
        levels = [quantizer.quantize(s / 100) for s in range(0, 200, 3)]
        assert levels == sorted(levels)

    @given(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def test_always_in_domain(self, score):
        quantizer = ScoreQuantizer(levels=128, scale=3.0)
        assert 1 <= quantizer.quantize(score) <= 128

    def test_dequantize_upper_edge(self):
        quantizer = ScoreQuantizer(levels=10, scale=1.0)
        assert quantizer.dequantize(10) == pytest.approx(1.0)
        assert quantizer.dequantize(5) == pytest.approx(0.5)

    def test_dequantize_validates(self):
        quantizer = ScoreQuantizer(levels=10, scale=1.0)
        with pytest.raises(ParameterError):
            quantizer.dequantize(0)
        with pytest.raises(ParameterError):
            quantizer.dequantize(11)

    def test_rejects_negative_scores(self):
        with pytest.raises(ParameterError):
            ScoreQuantizer(levels=10, scale=1.0).quantize(-0.1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            ScoreQuantizer(levels=0, scale=1.0)
        with pytest.raises(ParameterError):
            ScoreQuantizer(levels=10, scale=0.0)

    def test_fit_uses_max_and_headroom(self):
        quantizer = ScoreQuantizer.fit([0.2, 0.5, 1.0], levels=100,
                                       headroom=2.0)
        assert quantizer.scale == pytest.approx(2.0)
        assert quantizer.quantize(1.0) == 50

    def test_fit_rejects_empty_or_zero(self):
        with pytest.raises(ParameterError):
            ScoreQuantizer.fit([], levels=10)
        with pytest.raises(ParameterError):
            ScoreQuantizer.fit([0.0], levels=10)

    def test_fit_rejects_bad_headroom(self):
        with pytest.raises(ParameterError):
            ScoreQuantizer.fit([1.0], headroom=0.5)

    def test_quantization_preserves_strict_order_up_to_resolution(self):
        quantizer = ScoreQuantizer(levels=128, scale=1.0)
        a, b = 0.30, 0.40  # more than one level apart
        assert quantizer.quantize(a) < quantizer.quantize(b)
