"""Unit tests for the analysis pipeline and stop-word handling."""

import pytest

from repro.ir.analyzer import Analyzer
from repro.ir.stopwords import STOP_WORDS, is_stop_word, remove_stop_words


class TestStopWords:
    def test_common_words_present(self):
        for word in ["the", "and", "of", "is", "with"]:
            assert is_stop_word(word)

    def test_content_words_absent(self):
        for word in ["network", "protocol", "encryption", "shall", "must"]:
            assert not is_stop_word(word)

    def test_remove_preserves_order(self):
        tokens = ["the", "network", "of", "protocols", "is", "layered"]
        assert remove_stop_words(tokens) == ["network", "protocols", "layered"]

    def test_stop_list_is_lowercase(self):
        assert all(word == word.lower() for word in STOP_WORDS)


class TestAnalyzer:
    def test_full_pipeline(self):
        analyzer = Analyzer()
        terms = analyzer.analyze_list("The networks were searching quickly.")
        assert terms == ["network", "search", "quickli"]

    def test_repeats_preserved_for_tf(self):
        analyzer = Analyzer()
        terms = analyzer.analyze_list("network network networks")
        assert terms == ["network"] * 3

    def test_stemming_can_be_disabled(self):
        analyzer = Analyzer(use_stemming=False)
        assert analyzer.analyze_list("networks running") == [
            "networks", "running",
        ]

    def test_stop_words_can_be_disabled(self):
        analyzer = Analyzer(use_stop_words=False, use_stemming=False)
        assert "the" in analyzer.analyze_list("the network")

    def test_custom_stop_words(self):
        analyzer = Analyzer(stop_words=frozenset({"network"}))
        assert analyzer.analyze_list("network protocol") == ["protocol"]

    def test_numeric_dropping_forwarded(self):
        analyzer = Analyzer(drop_numeric=False, use_stemming=False)
        assert "8080" in analyzer.analyze_list("port 8080")

    def test_analyze_is_lazy(self):
        analyzer = Analyzer()
        stream = analyzer.analyze("alpha beta gamma")
        assert next(stream) == "alpha"

    def test_vocabulary_union(self):
        analyzer = Analyzer()
        vocab = analyzer.vocabulary(["networks ranked", "ranked searching"])
        assert vocab == {"network", "rank", "search"}


class TestAnalyzeQuery:
    def test_normalizes_single_keyword(self):
        analyzer = Analyzer()
        assert analyzer.analyze_query("Networks") == "network"

    def test_query_matches_document_transformation(self):
        analyzer = Analyzer()
        doc_terms = set(analyzer.analyze_list("encrypted searching"))
        assert analyzer.analyze_query("encryption") not in (None, "")
        assert analyzer.analyze_query("searches") in doc_terms

    def test_rejects_multi_word_query(self):
        analyzer = Analyzer()
        with pytest.raises(ValueError):
            analyzer.analyze_query("network protocol")

    def test_rejects_stop_word_query(self):
        analyzer = Analyzer()
        with pytest.raises(ValueError):
            analyzer.analyze_query("the")

    def test_rejects_empty_query(self):
        analyzer = Analyzer()
        with pytest.raises(ValueError):
            analyzer.analyze_query("")
