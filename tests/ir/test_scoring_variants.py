"""Unit tests for the alternative scoring formulas."""

import math

import pytest

from repro.errors import ParameterError
from repro.ir.scoring import single_keyword_score
from repro.ir.scoring_variants import (
    SCORER_REGISTRY,
    bm25_tf_score,
    log_tf_score,
    paper_eq2_score,
    raw_tf_score,
    relative_tf_score,
)


class TestIndividualScorers:
    def test_raw_tf(self):
        assert raw_tf_score(7, 100) == 7.0

    def test_log_tf(self):
        assert log_tf_score(1, 50) == pytest.approx(1.0)
        assert log_tf_score(10, 50) == pytest.approx(1 + math.log(10))

    def test_relative_tf(self):
        assert relative_tf_score(5, 20) == pytest.approx(0.25)

    def test_paper_eq2_delegates(self):
        assert paper_eq2_score(4, 12) == pytest.approx(
            single_keyword_score(4, 12)
        )

    def test_bm25_saturates_in_tf(self):
        low = bm25_tf_score(1, 100, average_file_length=100)
        mid = bm25_tf_score(10, 100, average_file_length=100)
        high = bm25_tf_score(100, 100, average_file_length=100)
        assert low < mid < high
        # Saturation: the second jump gains much less than the first.
        assert (high - mid) < (mid - low)

    def test_bm25_penalizes_long_documents(self):
        short = bm25_tf_score(5, 50, average_file_length=100)
        long = bm25_tf_score(5, 400, average_file_length=100)
        assert short > long

    def test_bm25_b_zero_ignores_length(self):
        a = bm25_tf_score(5, 50, average_file_length=100, b=0.0)
        b = bm25_tf_score(5, 500, average_file_length=100, b=0.0)
        assert a == pytest.approx(b)


class TestValidation:
    @pytest.mark.parametrize(
        "scorer",
        [raw_tf_score, log_tf_score, relative_tf_score, paper_eq2_score],
    )
    def test_rejects_bad_inputs(self, scorer):
        with pytest.raises(ParameterError):
            scorer(0, 10)
        with pytest.raises(ParameterError):
            scorer(1, 0)

    def test_bm25_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            bm25_tf_score(1, 10, average_file_length=0)
        with pytest.raises(ParameterError):
            bm25_tf_score(1, 10, k1=-1)
        with pytest.raises(ParameterError):
            bm25_tf_score(1, 10, b=2)


class TestRegistry:
    def test_contains_paper_formula(self):
        assert "paper-eq2" in SCORER_REGISTRY

    def test_all_registered_scorers_monotone_in_tf(self):
        for name, scorer in SCORER_REGISTRY.items():
            scores = [scorer(tf, 100) for tf in range(1, 30)]
            assert scores == sorted(scores), name

    def test_all_scorers_positive(self):
        for name, scorer in SCORER_REGISTRY.items():
            assert scorer(3, 50) > 0, name
