"""Unit tests for collection statistics (the Section IV-C inputs)."""

import pytest

from repro.errors import ParameterError
from repro.ir.inverted_index import InvertedIndex
from repro.ir.scoring import ScoreQuantizer
from repro.ir.stats import (
    collection_stats,
    duplicate_stats,
    keyword_duplicate_ratio,
    score_level_histogram,
)


def uniform_index() -> InvertedIndex:
    """Ten documents, identical shape: every score identical per term."""
    index = InvertedIndex()
    for i in range(10):
        index.add_document(f"d{i}", ["common"] * 2 + ["pad"] * 8)
    return index


def skewed_index() -> InvertedIndex:
    """Documents with varying term frequencies and lengths."""
    index = InvertedIndex()
    for i in range(1, 11):
        index.add_document(f"d{i}", ["hot"] * i + ["pad"] * (20 - i))
    return index


class TestCollectionStats:
    def test_counts(self):
        stats = collection_stats(uniform_index())
        assert stats.num_files == 10
        assert stats.vocabulary_size == 2
        assert stats.total_postings == 20
        assert stats.max_posting_length == 10
        assert stats.average_posting_length == pytest.approx(10.0)
        assert stats.average_file_length == pytest.approx(10.0)

    def test_rejects_empty_index(self):
        with pytest.raises(ParameterError):
            collection_stats(InvertedIndex())


class TestScoreLevelHistogram:
    def test_uniform_scores_collapse_to_one_level(self):
        index = uniform_index()
        quantizer = ScoreQuantizer(levels=16, scale=1.0)
        histogram = score_level_histogram(index, "common", quantizer)
        assert len(histogram) == 1
        assert sum(histogram.values()) == 10

    def test_skewed_scores_spread_levels(self):
        index = skewed_index()
        quantizer = ScoreQuantizer(levels=64, scale=0.3)
        histogram = score_level_histogram(index, "hot", quantizer)
        assert len(histogram) > 3

    def test_unknown_term_empty(self):
        quantizer = ScoreQuantizer(levels=16, scale=1.0)
        assert score_level_histogram(uniform_index(), "zzz", quantizer) == {}


class TestDuplicateStats:
    def test_uniform_index_maximal_duplicates(self):
        quantizer = ScoreQuantizer(levels=16, scale=1.0)
        stats = duplicate_stats(uniform_index(), quantizer)
        assert stats.max_duplicates == 10
        assert stats.average_list_length == pytest.approx(10.0)
        assert stats.ratio == pytest.approx(1.0)

    def test_skewed_index_lower_ratio(self):
        quantizer = ScoreQuantizer(levels=64, scale=0.3)
        stats = duplicate_stats(skewed_index(), quantizer)
        assert stats.max_duplicates < 10

    def test_rejects_empty_index(self):
        quantizer = ScoreQuantizer(levels=16, scale=1.0)
        with pytest.raises(ParameterError):
            duplicate_stats(InvertedIndex(), quantizer)


class TestKeywordDuplicateRatio:
    def test_single_keyword_view(self):
        quantizer = ScoreQuantizer(levels=16, scale=1.0)
        ratio = keyword_duplicate_ratio(uniform_index(), "common", quantizer)
        assert ratio == pytest.approx(1.0)

    def test_spread_scores_have_small_ratio(self):
        quantizer = ScoreQuantizer(levels=64, scale=0.3)
        ratio = keyword_duplicate_ratio(skewed_index(), "hot", quantizer)
        assert ratio < 0.5

    def test_unknown_term_raises(self):
        quantizer = ScoreQuantizer(levels=16, scale=1.0)
        with pytest.raises(ParameterError):
            keyword_duplicate_ratio(uniform_index(), "zzz", quantizer)
