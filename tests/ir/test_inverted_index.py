"""Unit tests for the plaintext inverted index."""

import pytest

from repro.errors import CorpusError, ParameterError
from repro.ir.inverted_index import InvertedIndex, Posting


def build_sample() -> InvertedIndex:
    index = InvertedIndex()
    index.add_document("d1", ["net", "net", "proto"])
    index.add_document("d2", ["net", "cache"])
    index.add_document("d3", ["proto", "proto", "proto", "cache"])
    return index


class TestPosting:
    def test_valid(self):
        posting = Posting(file_id="d1", term_frequency=3)
        assert posting.file_id == "d1"

    def test_rejects_zero_frequency(self):
        with pytest.raises(ParameterError):
            Posting(file_id="d1", term_frequency=0)

    def test_rejects_empty_id(self):
        with pytest.raises(ParameterError):
            Posting(file_id="", term_frequency=1)


class TestConstruction:
    def test_counts_files_and_vocabulary(self):
        index = build_sample()
        assert index.num_files == 3
        assert index.vocabulary == {"net", "proto", "cache"}
        assert index.vocabulary_size == 3

    def test_file_lengths(self):
        index = build_sample()
        assert index.file_length("d1") == 3
        assert index.file_length("d3") == 4

    def test_term_frequencies(self):
        index = build_sample()
        assert index.term_frequency("net", "d1") == 2
        assert index.term_frequency("proto", "d3") == 3
        assert index.term_frequency("cache", "d1") == 0
        assert index.term_frequency("missing", "d1") == 0

    def test_document_frequency(self):
        index = build_sample()
        assert index.document_frequency("net") == 2
        assert index.document_frequency("missing") == 0

    def test_contains(self):
        index = build_sample()
        assert "net" in index
        assert "missing" not in index

    def test_rejects_duplicate_document(self):
        index = build_sample()
        with pytest.raises(CorpusError):
            index.add_document("d1", ["x", "y"])

    def test_rejects_empty_document(self):
        index = InvertedIndex()
        with pytest.raises(CorpusError):
            index.add_document("d9", [])

    def test_rejects_empty_file_id(self):
        index = InvertedIndex()
        with pytest.raises(ParameterError):
            index.add_document("", ["x"])


class TestPostingLists:
    def test_sorted_by_file_id(self):
        index = build_sample()
        postings = index.posting_list("net")
        assert [p.file_id for p in postings] == ["d1", "d2"]

    def test_carries_frequencies(self):
        index = build_sample()
        postings = {p.file_id: p.term_frequency for p in index.posting_list("proto")}
        assert postings == {"d1": 1, "d3": 3}

    def test_unknown_term_is_empty(self):
        assert build_sample().posting_list("missing") == []

    def test_max_posting_length(self):
        assert build_sample().max_posting_length() == 2

    def test_max_posting_length_empty_index(self):
        assert InvertedIndex().max_posting_length() == 0

    def test_items_sorted_by_term(self):
        terms = [term for term, _ in build_sample().items()]
        assert terms == sorted(terms)

    def test_file_ids_iteration(self):
        assert set(build_sample().file_ids()) == {"d1", "d2", "d3"}


class TestRemoval:
    def test_remove_document_updates_postings(self):
        index = build_sample()
        index.remove_document("d1")
        assert index.num_files == 2
        assert index.term_frequency("net", "d1") == 0
        assert [p.file_id for p in index.posting_list("net")] == ["d2"]

    def test_remove_drops_emptied_terms(self):
        index = InvertedIndex()
        index.add_document("solo", ["unique", "words"])
        index.add_document("other", ["different"])
        index.remove_document("solo")
        assert "unique" not in index
        assert index.vocabulary == {"different"}

    def test_remove_unknown_raises(self):
        with pytest.raises(CorpusError):
            build_sample().remove_document("missing")

    def test_file_length_of_removed_raises(self):
        index = build_sample()
        index.remove_document("d2")
        with pytest.raises(CorpusError):
            index.file_length("d2")

    def test_add_after_remove(self):
        index = build_sample()
        index.remove_document("d1")
        index.add_document("d1", ["fresh"])
        assert index.file_length("d1") == 1
