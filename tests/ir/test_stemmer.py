"""Unit tests for the Porter stemmer against published rule examples.

The expected values below are taken from the rule examples in Porter's
original paper (Program, 1980), exercising every step of the algorithm.
"""

import pytest

from repro.ir.stemmer import PorterStemmer, stem


class TestStep1a:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ],
    )
    def test_plural_rules(self, word, expected):
        assert stem(word) == expected


class TestStep1b:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ],
    )
    def test_ed_ing_rules(self, word, expected):
        assert stem(word) == expected


class TestStep1c:
    @pytest.mark.parametrize(
        "word,expected",
        [("happy", "happi"), ("sky", "sky")],
    )
    def test_y_to_i(self, word, expected):
        assert stem(word) == expected


class TestStep2:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ],
    )
    def test_double_suffix_rules(self, word, expected):
        assert stem(word) == expected


class TestStep3:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ],
    )
    def test_suffix_rules(self, word, expected):
        assert stem(word) == expected


class TestStep4:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ],
    )
    def test_suffix_stripping(self, word, expected):
        assert stem(word) == expected


class TestStep5:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_final_cleanup(self, word, expected):
        assert stem(word) == expected


class TestGeneralBehaviour:
    def test_short_words_unchanged(self):
        assert stem("at") == "at"
        assert stem("by") == "by"
        assert stem("a") == "a"

    def test_idempotent_on_common_vocabulary(self):
        words = [
            "network", "networks", "networking", "protocol", "protocols",
            "encryption", "encrypted", "ranking", "ranked", "searches",
        ]
        for word in words:
            once = stem(word)
            assert stem(once) == once

    def test_inflections_conflate(self):
        assert stem("networks") == stem("network")
        assert stem("searching") == stem("searched")
        assert stem("connections") == stem("connection")


class TestPorterStemmerClass:
    def test_matches_function(self):
        stemmer = PorterStemmer()
        for word in ["relational", "hopefulness", "caresses"]:
            assert stemmer.stem(word) == stem(word)

    def test_cache_consistency(self):
        stemmer = PorterStemmer()
        first = stemmer.stem("generalization")
        second = stemmer.stem("generalization")
        assert first == second

    def test_callable(self):
        stemmer = PorterStemmer()
        assert stemmer("running") == "run"
