"""Unit tests for tokenization and case folding."""

import pytest

from repro.errors import ParameterError
from repro.ir.tokenizer import fold_case, tokenize, tokenize_list


class TestFoldCase:
    def test_lowercases(self):
        assert fold_case("Network PROTOCOL") == "network protocol"

    def test_idempotent(self):
        assert fold_case("already lower") == "already lower"


class TestTokenize:
    def test_splits_on_non_alphanumerics(self):
        assert tokenize_list("net-work, protocol; stack!") == [
            "net", "work", "protocol", "stack",
        ]

    def test_case_folds(self):
        assert tokenize_list("TCP handshake") == ["tcp", "handshake"]

    def test_preserves_order_and_repeats(self):
        assert tokenize_list("ack ack syn ack") == ["ack", "ack", "syn", "ack"]

    def test_drops_pure_numbers_by_default(self):
        assert tokenize_list("section 42 paragraph 7b") == [
            "section", "paragraph", "7b",
        ]

    def test_keeps_numbers_when_asked(self):
        assert tokenize_list("port 8080", drop_numeric=False) == [
            "port", "8080",
        ]

    def test_drops_single_characters_by_default(self):
        assert tokenize_list("a b cd") == ["cd"]

    def test_min_length_configurable(self):
        assert tokenize_list("a bb ccc", min_length=1, drop_numeric=False) == [
            "a", "bb", "ccc",
        ]

    def test_max_length_filters_artifacts(self):
        long_token = "x" * 50
        assert tokenize_list(f"normal {long_token} words") == [
            "normal", "words",
        ]

    def test_empty_text(self):
        assert tokenize_list("") == []

    def test_only_punctuation(self):
        assert tokenize_list("!!! --- ...") == []

    def test_mixed_alphanumeric_tokens_survive(self):
        assert tokenize_list("ipv6 sha256") == ["ipv6", "sha256"]

    def test_rejects_bad_lengths(self):
        with pytest.raises(ParameterError):
            tokenize_list("text", min_length=0)
        with pytest.raises(ParameterError):
            tokenize_list("text", min_length=5, max_length=3)

    def test_is_lazy_generator(self):
        iterator = tokenize("one two three")
        assert next(iterator) == "one"
        assert next(iterator) == "two"
